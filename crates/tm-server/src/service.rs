//! The service itself: heap layout, the request vocabulary, worker serve
//! loops and the multi-worker front-end.
//!
//! A [`ServerState`] is a multi-tenant KV/queue store laid out on the
//! simulated heap as `spec.shards` independent *shards*, each owning an
//! open-addressing hash table ([`HeapHashMap`]) and a bounded queue
//! ([`HeapQueue`]). Keys are tenant-scoped (`(tenant, key)` pairs hashed to
//! a shard), so tenants share the shard fabric without sharing keys.
//!
//! Every request executes as a Part-HTM transaction (any
//! [`TmExecutor`] works — the service is protocol-generic). Single-shard
//! requests are *small* and batchable; [`Op::Transfer`] may touch two
//! shards and always runs as its own transaction. Shards are owned by
//! workers (`shard % workers`), so each shard's requests are served by
//! exactly one worker in arrival order — the property the batching
//! equivalence argument rests on (`docs/tm-server.md`).

use crate::admission::{Admission, AdmissionSpec};
use crate::batch::{Batcher, ReqGroup};
use htm_sim::vclock::{self, SchedSpec, VClock};
use htm_sim::HtmStats;
use part_htm_core::{TmExecutor, TmRuntime, TmStats, TxCtx};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::time::{Duration, Instant};
use tm_harness::driver::RunResult;
use tm_harness::loadgen::LatencyHisto;
use tm_harness::report::StatsReport;
use tm_workloads::structures::{HeapHashMap, HeapQueue};

/// Geometry of the service heap.
#[derive(Clone, Copy, Debug)]
pub struct ServerSpec {
    /// Shard count (power of two). Each shard = one KV table + one queue.
    pub shards: usize,
    /// KV slots per shard (power of two; size above peak occupancy — the
    /// table does not resize).
    pub slots_per_shard: usize,
    /// Queue capacity per shard (power of two).
    pub queue_cap: usize,
}

impl Default for ServerSpec {
    fn default() -> Self {
        Self {
            shards: 8,
            slots_per_shard: 256,
            queue_cap: 64,
        }
    }
}

impl ServerSpec {
    /// Application heap words the layout needs (size the runtime with this).
    pub fn app_words(&self) -> usize {
        self.shards * self.shard_words()
    }

    fn shard_words(&self) -> usize {
        HeapHashMap::words_needed(self.slots_per_shard) + HeapQueue::words_needed(self.queue_cap)
    }

    /// The shard owning tenant-scoped key `(tenant, key)`.
    #[inline]
    pub fn shard_of_key(&self, tenant: u32, key: u32) -> u32 {
        let h = full_key(tenant, key).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        ((h >> 48) as usize & (self.shards - 1)) as u32
    }

    /// The shard owning `tenant`'s queue.
    #[inline]
    pub fn shard_of_queue(&self, tenant: u32) -> u32 {
        let h = (u64::from(tenant) + 1).wrapping_mul(0xD1B5_4A32_D192_ED03);
        ((h >> 48) as usize & (self.shards - 1)) as u32
    }
}

/// Tenant-scoped 63-bit-safe key: tenants never collide in the key space.
#[inline]
fn full_key(tenant: u32, key: u32) -> u64 {
    (u64::from(tenant) << 32) | u64::from(key)
}

/// One service request. All values are 62-bit-safe (the Part-HTM-O lock bit
/// plus the `Option` encoding of [`enc_opt`] each cost a bit).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Op {
    /// KV write; responds with the previous value (encoded, see [`enc_opt`]).
    Put {
        /// Tenant id.
        tenant: u32,
        /// Tenant-scoped key.
        key: u32,
        /// Value to store.
        val: u64,
    },
    /// KV read; responds with the value (encoded).
    Get {
        /// Tenant id.
        tenant: u32,
        /// Tenant-scoped key.
        key: u32,
    },
    /// KV read-modify-write (counter bump); responds with the new value.
    Add {
        /// Tenant id.
        tenant: u32,
        /// Tenant-scoped key.
        key: u32,
        /// Increment.
        delta: u64,
    },
    /// Enqueue onto the tenant's queue; responds 1 on success, 0 when full.
    Push {
        /// Tenant id.
        tenant: u32,
        /// Value to enqueue.
        val: u64,
    },
    /// Dequeue from the tenant's queue; responds with the value (encoded).
    Pop {
        /// Tenant id.
        tenant: u32,
    },
    /// Move `amount` between two balances of one tenant (possibly across
    /// shards); responds 1 if applied, 0 on insufficient funds. Never
    /// batched.
    Transfer {
        /// Tenant id.
        tenant: u32,
        /// Source key.
        from: u32,
        /// Destination key.
        to: u32,
        /// Amount to move (applied only if the source balance covers it).
        amount: u64,
    },
}

/// Encode `Option<u64>` into the response word: 0 = absent, `v + 1` = present.
#[inline]
pub fn enc_opt(v: Option<u64>) -> u64 {
    v.map_or(0, |v| v + 1)
}

impl Op {
    /// The shard this request is served on (for [`Op::Transfer`]: the source
    /// key's shard — the worker owning it runs the transaction).
    pub fn home_shard(&self, spec: &ServerSpec) -> u32 {
        match *self {
            Op::Put { tenant, key, .. } | Op::Get { tenant, key } | Op::Add { tenant, key, .. } => {
                spec.shard_of_key(tenant, key)
            }
            Op::Push { tenant, .. } | Op::Pop { tenant } => spec.shard_of_queue(tenant),
            Op::Transfer { tenant, from, .. } => spec.shard_of_key(tenant, from),
        }
    }

    /// The second shard a transfer touches, when it differs from the home
    /// shard. `None` for every batchable op.
    pub fn cross_shard(&self, spec: &ServerSpec) -> Option<u32> {
        match *self {
            Op::Transfer {
                tenant, from, to, ..
            } => {
                let a = spec.shard_of_key(tenant, from);
                let b = spec.shard_of_key(tenant, to);
                (a != b).then_some(b)
            }
            _ => None,
        }
    }

    /// True when the op may coalesce into a same-shard group commit.
    /// Transfers never batch (they may span shards and carry a conditional
    /// two-key update — the batching rules in `docs/tm-server.md`).
    pub fn batchable(&self) -> bool {
        !matches!(self, Op::Transfer { .. })
    }
}

/// A request: an operation plus its scheduled open-loop arrival time
/// (time units — nanoseconds under the wall clock, work units under the
/// virtual clock).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Request {
    /// Scheduled arrival time.
    pub arrival: u64,
    /// Stream sequence number (arrival order): the stable request identity
    /// that response-equivalence oracles join on.
    pub seq: u64,
    /// The operation.
    pub op: Op,
}

/// The service heap: per-shard KV tables and queues over a [`TmRuntime`]'s
/// application region.
pub struct ServerState {
    spec: ServerSpec,
    maps: Vec<HeapHashMap>,
    queues: Vec<HeapQueue>,
}

impl ServerState {
    /// Lay the service out at the start of `rt`'s application region
    /// (`rt` must have been sized with at least [`ServerSpec::app_words`]).
    pub fn new(rt: &TmRuntime, spec: ServerSpec) -> Self {
        assert!(spec.shards.is_power_of_two());
        assert!(rt.app_words() >= spec.app_words(), "runtime heap too small");
        let mut maps = Vec::with_capacity(spec.shards);
        let mut queues = Vec::with_capacity(spec.shards);
        let mut off = 0usize;
        for _ in 0..spec.shards {
            maps.push(HeapHashMap::new(rt.app(off), spec.slots_per_shard));
            off += HeapHashMap::words_needed(spec.slots_per_shard);
            queues.push(HeapQueue::new(rt.app(off), spec.queue_cap));
            off += HeapQueue::words_needed(spec.queue_cap);
        }
        Self { spec, maps, queues }
    }

    /// The geometry.
    pub fn spec(&self) -> &ServerSpec {
        &self.spec
    }

    /// Execute one request against `ctx`, returning the response word.
    pub fn exec_op<C: TxCtx>(&self, op: &Op, ctx: &mut C) -> htm_sim::abort::TxResult<u64> {
        match *op {
            Op::Put { tenant, key, val } => {
                let m = &self.maps[self.spec.shard_of_key(tenant, key) as usize];
                m.insert(ctx, full_key(tenant, key), val).map(enc_opt)
            }
            Op::Get { tenant, key } => {
                let m = &self.maps[self.spec.shard_of_key(tenant, key) as usize];
                m.get(ctx, full_key(tenant, key)).map(enc_opt)
            }
            Op::Add { tenant, key, delta } => {
                let m = &self.maps[self.spec.shard_of_key(tenant, key) as usize];
                m.update(ctx, full_key(tenant, key), 0, |v| v + delta)
            }
            Op::Push { tenant, val } => {
                let q = &self.queues[self.spec.shard_of_queue(tenant) as usize];
                q.push(ctx, val).map(u64::from)
            }
            Op::Pop { tenant } => {
                let q = &self.queues[self.spec.shard_of_queue(tenant) as usize];
                q.pop(ctx).map(enc_opt)
            }
            Op::Transfer {
                tenant,
                from,
                to,
                amount,
            } => {
                let mf = &self.maps[self.spec.shard_of_key(tenant, from) as usize];
                let mt = &self.maps[self.spec.shard_of_key(tenant, to) as usize];
                let bal = mf.get(ctx, full_key(tenant, from))?.unwrap_or(0);
                if bal < amount {
                    return Ok(0);
                }
                mf.update(ctx, full_key(tenant, from), 0, |v| v - amount)?;
                mt.update(ctx, full_key(tenant, to), 0, |v| v + amount)?;
                Ok(1)
            }
        }
    }

    /// Non-transactional sum of every KV value (verification: transfers
    /// conserve this).
    pub fn kv_total_nt(&self, rt: &TmRuntime) -> u64 {
        let sys = rt.system();
        let mut total = 0u64;
        for (s, m) in self.maps.iter().enumerate() {
            let base = s * self.spec.shard_words();
            for slot in 0..self.spec.slots_per_shard {
                if sys.nt_read(rt.app(base + slot * 8)) != 0 {
                    total += sys.nt_read(rt.app(base + slot * 8 + 1));
                }
            }
            let _ = m;
        }
        total
    }

    /// Pre-load `(tenant, key) -> value` pairs outside any measured region
    /// (direct non-speculative writes; call before serving starts).
    pub fn preload(&self, rt: &TmRuntime, items: &[(u32, u32, u64)]) {
        let th = part_htm_core::TmThread::new(rt, 0);
        let mut ctx = part_htm_core::ctx::SlowCtx {
            th: &th.hw,
            mask_values: false,
        };
        for &(tenant, key, val) in items {
            self.maps[self.spec.shard_of_key(tenant, key) as usize]
                .insert(&mut ctx, full_key(tenant, key), val)
                .expect("slow-path preload cannot abort");
        }
    }
}

/// Traffic shape for [`gen_requests`]: op-class weights plus the hot-key
/// knobs that create cross-shard contention.
#[derive(Clone, Copy, Debug)]
pub struct TrafficMix {
    /// Tenants in play.
    pub tenants: u32,
    /// Keys per tenant.
    pub keys: u32,
    /// Weight of small KV ops (Put/Get/Add).
    pub kv_weight: u32,
    /// Weight of queue ops (Push/Pop).
    pub queue_weight: u32,
    /// Weight of transfers.
    pub transfer_weight: u32,
    /// Fraction (0..=100) of transfers drawn from the hot key set.
    pub hot_pct: u32,
    /// Hot key set size (small = convoy-prone).
    pub hot_keys: u32,
}

impl Default for TrafficMix {
    fn default() -> Self {
        Self {
            tenants: 4,
            keys: 4096,
            kv_weight: 8,
            queue_weight: 1,
            transfer_weight: 1,
            hot_pct: 50,
            hot_keys: 8,
        }
    }
}

impl TrafficMix {
    /// A small-transaction-only mix (the serverbench batching row).
    pub fn small_only() -> Self {
        Self {
            transfer_weight: 0,
            queue_weight: 1,
            ..Self::default()
        }
    }
}

/// Generate `n` requests with the given arrival timestamps (one per
/// request, non-decreasing — see [`tm_harness::loadgen::ArrivalProcess`]),
/// deterministically from `seed`.
pub fn gen_requests(mix: &TrafficMix, arrivals: &[u64], seed: u64) -> Vec<Request> {
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x5E12_7E57);
    let total_w = mix.kv_weight + mix.queue_weight + mix.transfer_weight;
    assert!(total_w > 0, "all traffic weights zero");
    arrivals
        .iter()
        .enumerate()
        .map(|(seq, &arrival)| {
            let tenant = rng.gen_range(0..mix.tenants.max(1));
            let w = rng.gen_range(0..total_w);
            let op = if w < mix.kv_weight {
                let key = rng.gen_range(0..mix.keys.max(1));
                match rng.gen_range(0..3u32) {
                    0 => Op::Put {
                        tenant,
                        key,
                        val: rng.gen_range(0..1_000_000),
                    },
                    1 => Op::Get { tenant, key },
                    _ => Op::Add {
                        tenant,
                        key,
                        delta: rng.gen_range(1..100),
                    },
                }
            } else if w < mix.kv_weight + mix.queue_weight {
                if rng.gen_range(0..2u32) == 0 {
                    Op::Push {
                        tenant,
                        val: rng.gen_range(0..1_000_000),
                    }
                } else {
                    Op::Pop { tenant }
                }
            } else {
                let hot = rng.gen_range(0..100) < mix.hot_pct;
                let span = if hot {
                    mix.hot_keys.max(2)
                } else {
                    mix.keys.max(2)
                };
                let from = rng.gen_range(0..span);
                let mut to = rng.gen_range(0..span);
                if to == from {
                    to = (to + 1) % span;
                }
                Op::Transfer {
                    tenant,
                    from,
                    to,
                    amount: rng.gen_range(1..20),
                }
            };
            Request {
                arrival,
                seq: seq as u64,
                op,
            }
        })
        .collect()
}

/// How the server keeps time (and therefore how arrivals are paced and
/// latency is measured).
#[derive(Clone, Debug)]
pub enum ServeMode {
    /// Wall clock: time units are nanoseconds.
    Wall,
    /// Deterministic virtual clock ([`htm_sim::vclock`]): time units are
    /// simulated work units and the whole run is reproducible from the spec.
    Virtual(SchedSpec),
}

/// Per-run serving options.
#[derive(Clone, Debug)]
pub struct ServeOpts {
    /// Group-commit width cap: maximum same-shard small requests per
    /// transaction. `1` pins the unbatched differential oracle.
    pub batch_max: usize,
    /// Admission control tuning ([`AdmissionSpec::off`] pins the
    /// no-controller baseline).
    pub admission: AdmissionSpec,
    /// Print the merged [`StatsReport`] JSON snapshot to stdout after the
    /// run.
    pub stats_stdout: bool,
    /// Write the stats snapshot JSON to this path: worker 0 overwrites it
    /// every [`ServeOpts::stats_every`] groups mid-run (its own counters),
    /// and the merged final snapshot replaces it after the run.
    pub stats_dump: Option<String>,
    /// Groups between periodic dumps (0 = final dump only).
    pub stats_every: u64,
    /// Collect every `(seq, response)` pair into the report — the join key
    /// for the batched-vs-unbatched differential oracles (costs memory
    /// proportional to the stream; off for benchmarks).
    pub collect_responses: bool,
}

impl Default for ServeOpts {
    fn default() -> Self {
        Self {
            batch_max: 8,
            admission: AdmissionSpec::default(),
            stats_stdout: false,
            stats_dump: None,
            stats_every: 0,
            collect_responses: false,
        }
    }
}

/// A worker's clock (see [`ServeMode`]).
enum WorkerClock {
    Wall(Instant),
    Virtual,
}

impl WorkerClock {
    #[inline]
    fn now(&self) -> u64 {
        match self {
            WorkerClock::Wall(t0) => t0.elapsed().as_nanos() as u64,
            WorkerClock::Virtual => vclock::now().unwrap_or(0),
        }
    }

    /// Idle until time `t` (the next scheduled arrival).
    fn wait_until(&self, t: u64) {
        match self {
            WorkerClock::Wall(t0) => {
                while (t0.elapsed().as_nanos() as u64) < t {
                    std::hint::spin_loop();
                }
            }
            WorkerClock::Virtual => {
                let now = vclock::now().unwrap_or(0);
                if t > now {
                    vclock::charge(t - now);
                }
            }
        }
    }
}

/// One worker's serve-loop outcome.
struct WorkerOut {
    tm: TmStats,
    hw: HtmStats,
    histo: LatencyHisto,
    served: u64,
    elapsed: Duration,
    responses: Vec<(u64, u64)>,
}

/// The aggregated outcome of a server run.
pub struct ServerReport {
    /// Merged run result (commits count *group* transactions, not requests).
    pub run: RunResult,
    /// Requests served (admitted + shed — nothing is dropped).
    pub served: u64,
    /// Sojourn latency (completion minus scheduled arrival) over all
    /// requests, in the mode's time units.
    pub latency: LatencyHisto,
    /// `(seq, response)` pairs when [`ServeOpts::collect_responses`] was set
    /// (unsorted — join on `seq`); empty otherwise.
    pub responses: Vec<(u64, u64)>,
}

impl ServerReport {
    /// Requests per second (wall mode).
    pub fn goodput_wall(&self) -> f64 {
        self.served as f64 / self.run.elapsed.as_secs_f64().max(1e-9)
    }

    /// Requests per million work units (virtual mode).
    pub fn goodput_virtual(&self) -> f64 {
        self.served as f64 * 1e6 / (self.run.makespan.max(1) as f64)
    }
}

/// The per-worker serve loop: pull due arrivals in order, coalesce
/// batchable same-shard requests up to `batch_max`, flush a transfer's
/// shards before it runs, admit or shed each group, record sojourn latency.
fn serve_worker<'r, E: TmExecutor<'r>>(
    exec: &mut E,
    state: &ServerState,
    stream: &[Request],
    opts: &ServeOpts,
    clock: &WorkerClock,
    periodic_dump: bool,
) -> WorkerOut {
    let mut batcher = Batcher::new(state.spec().shards, opts.batch_max);
    let mut admission = Admission::new(opts.admission);
    let mut histo = LatencyHisto::new();
    let mut served = 0u64;
    let mut groups = 0u64;
    let mut responses: Vec<(u64, u64)> = Vec::new();
    let mut next = 0usize;
    // Arrivals at or before the last observed clock: `due - next` is the
    // due-but-unpulled queue, part of the controller's backlog signal.
    let mut due = 0usize;
    let t0 = Instant::now();

    let run_group = |group: &mut ReqGroup<'_>,
                     exec: &mut E,
                     admission: &mut Admission,
                     histo: &mut LatencyHisto,
                     responses: &mut Vec<(u64, u64)>,
                     served: &mut u64,
                     groups: &mut u64,
                     backlog: u64| {
        let n = group.len() as u64;
        let admit = admission.admit(backlog, exec.thread());
        let path = if admit {
            exec.execute(group)
        } else {
            exec.execute_shed(group)
        };
        if admit {
            admission.observe(path, exec.thread());
        }
        let st = &mut exec.thread_mut().stats;
        if n > 1 {
            st.batch_groups += 1;
            st.batch_reqs += n;
        }
        let done = clock.now();
        for r in group.requests() {
            histo.record(done.saturating_sub(r.arrival));
        }
        if opts.collect_responses {
            responses.extend(
                group
                    .requests()
                    .iter()
                    .zip(group.results())
                    .map(|(r, &v)| (r.seq, v)),
            );
        }
        *served += n;
        *groups += 1;
        if periodic_dump && opts.stats_every > 0 && (*groups).is_multiple_of(opts.stats_every) {
            if let Some(path) = &opts.stats_dump {
                let th = exec.thread();
                let snap = worker_snapshot::<E>(&th.stats, &th.hw.stats);
                let _ = std::fs::write(path, snap.to_json());
            }
        }
    };

    while next < stream.len() || !batcher.is_empty() {
        let now = clock.now();
        while due < stream.len() && stream[due].arrival <= now {
            due += 1;
        }
        // Pull every due arrival, in order. Full groups and transfers flush
        // inline so per-shard service order equals arrival order.
        while next < stream.len() && stream[next].arrival <= now {
            let req = stream[next];
            next += 1;
            for mut g in batcher.offer(state, req) {
                let backlog =
                    (due - next) as u64 + batcher.pending() as u64 + g.len() as u64;
                run_group(
                    &mut g,
                    exec,
                    &mut admission,
                    &mut histo,
                    &mut responses,
                    &mut served,
                    &mut groups,
                    backlog,
                );
            }
        }
        if let Some(mut g) = batcher.flush_next(state) {
            // No arrival is due: serving a partial batch beats idling.
            let backlog = (due - next) as u64 + batcher.pending() as u64 + g.len() as u64;
            run_group(
                &mut g,
                exec,
                &mut admission,
                &mut histo,
                &mut responses,
                &mut served,
                &mut groups,
                backlog,
            );
        } else if next < stream.len() {
            clock.wait_until(stream[next].arrival);
        }
    }
    exec.thread_mut().harvest_host_counters();
    let th = exec.thread();
    WorkerOut {
        tm: (*th.stats).clone(),
        hw: (*th.hw.stats).clone(),
        histo,
        served,
        elapsed: t0.elapsed(),
        responses,
    }
}

/// Build a [`StatsReport`] for one worker's (or the merged) counters.
fn worker_snapshot<'r, E: TmExecutor<'r>>(tm: &TmStats, hw: &HtmStats) -> StatsReport {
    StatsReport::from_run(&RunResult {
        algo: E::NAME,
        threads: 1,
        elapsed: Duration::ZERO,
        commits: tm.commits_total(),
        makespan: 0,
        tm: tm.clone(),
        hw: hw.clone(),
    })
}

/// Serve `requests` (sorted by arrival) on `workers` worker threads under
/// executor `E`. Requests are routed to the worker owning their home shard
/// (`shard % workers`), each worker serving its stream in arrival order.
pub fn run_server<'r, E: TmExecutor<'r>>(
    rt: &'r TmRuntime,
    state: &ServerState,
    workers: usize,
    requests: &[Request],
    mode: &ServeMode,
    opts: &ServeOpts,
) -> ServerReport {
    assert!(workers >= 1 && workers <= rt.threads());
    debug_assert!(
        requests.windows(2).all(|w| w[0].arrival <= w[1].arrival),
        "requests must be sorted by arrival"
    );
    let spec = *state.spec();
    let mut streams: Vec<Vec<Request>> = vec![Vec::new(); workers];
    for r in requests {
        streams[r.op.home_shard(&spec) as usize % workers].push(*r);
    }

    let vclock = match mode {
        ServeMode::Virtual(spec) => Some(VClock::new(workers, spec.clone())),
        ServeMode::Wall => None,
    };
    let mut tm = TmStats::default();
    let mut hw = HtmStats::default();
    let mut latency = LatencyHisto::new();
    let mut served = 0u64;
    let mut elapsed = Duration::ZERO;
    let mut responses = Vec::new();

    std::thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|wid| {
                let stream = &streams[wid];
                let vclock = vclock.as_ref();
                s.spawn(move || {
                    let mut exec = E::new(rt, wid);
                    let (clock, guard) = match vclock {
                        Some(vc) => (WorkerClock::Virtual, Some(vc.attach(wid))),
                        None => (WorkerClock::Wall(Instant::now()), None),
                    };
                    let out = serve_worker(&mut exec, state, stream, opts, &clock, wid == 0);
                    drop(guard);
                    out
                })
            })
            .collect();
        for h in handles {
            let out = h.join().expect("server worker panicked");
            tm.merge(&out.tm);
            hw.merge(&out.hw);
            latency.merge(&out.histo);
            served += out.served;
            elapsed = elapsed.max(out.elapsed);
            responses.extend(out.responses);
        }
    });

    let makespan = vclock.map_or(0, |vc| vc.report().makespan);
    let run = RunResult {
        algo: E::NAME,
        threads: workers,
        elapsed,
        commits: tm.commits_total(),
        makespan,
        tm,
        hw,
    };
    let snap = StatsReport::from_run(&run);
    if opts.stats_stdout {
        print!("{}", snap.to_json());
    }
    if let Some(path) = &opts.stats_dump {
        let _ = std::fs::write(path, snap.to_json());
    }
    ServerReport {
        run,
        served,
        latency,
        responses,
    }
}
