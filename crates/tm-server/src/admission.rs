//! Overload admission control: shed excess arrivals straight to the
//! serialized slow path instead of letting speculative retries convoy the
//! ring shards.
//!
//! The failure mode this prevents is the service-scale lemming effect: under
//! sustained overload every conflict-aborted retry burns backoff spins and
//! anti-lemming global-lock waits, the ring shards convoy behind in-flight
//! publishes, and the served rate *collapses* below the hardware's actual
//! capacity — the server does strictly more work per committed request
//! exactly when it has the least slack. Shedding the excess to
//! [`part_htm_core::TmExecutor::execute_shed`] (one serialized global-lock
//! pass, no speculative attempt, no backoff) keeps the speculative paths at
//! their healthy operating point and degrades tail latency gracefully
//! instead.
//!
//! The controller is a per-worker probe/backoff loop fed by three signals,
//! all already exported by the runtime (nothing is added to the hot paths):
//!
//! 1. **backlog** — requests pulled from the arrival stream but not yet
//!    served. Below [`AdmissionSpec::backlog_min`] the server is keeping up
//!    and everything is admitted; shedding only ever applies to *excess*
//!    arrivals.
//! 2. **capacity/conflict trouble EWMA** — per admitted group, one
//!    fixed-point EWMA sample of "this group saw a capacity-class hardware
//!    abort or fell off the fast path" (deltas of
//!    [`htm_sim::HtmStats::aborts_capacity`] and the commit path). Shed
//!    groups are not sampled — they say nothing about the speculative
//!    path — but each shed decays the EWMA slightly, so the controller
//!    periodically re-probes speculation instead of latching shut.
//! 3. **slow-path occupancy** — the global lock observed held plus the ring
//!    shards' in-flight publish occupancy
//!    ([`tm_sig::RingSummary::inflight_publishes`]); high occupancy counts
//!    as a trouble sample even if this worker's own groups still commit.

use part_htm_core::{CommitPath, TmRuntime, TmThread};

/// Fixed-point one for the trouble EWMA (like the planner's profiles).
pub const EWMA_ONE: u32 = 1024;
/// EWMA smoothing shift for trouble samples (α = 1/8).
const EWMA_SHIFT: u32 = 3;
/// Recovery decay applied per *shed* group (α = 1/32): a fully latched
/// controller re-probes the speculative path after a few dozen sheds.
const RECOVER_SHIFT: u32 = 5;

/// Construction-time tuning of the admission controller.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AdmissionSpec {
    /// Master switch: `false` pins the no-controller baseline (every request
    /// admitted to the speculative paths) — the differential oracle the
    /// serverbench overload row is measured against.
    pub enabled: bool,
    /// Admit everything while the per-worker backlog is at or below this
    /// (the server is keeping up; there is no excess to shed).
    pub backlog_min: u64,
    /// Trouble-EWMA threshold (fixed point over [`EWMA_ONE`]): with backlog
    /// above `backlog_min`, shed while the EWMA is at or above this.
    pub trouble_threshold: u32,
    /// Ring-occupancy trouble trigger: total in-flight publishes across the
    /// ring shards at or above this counts as a trouble sample.
    pub occupancy_max: u64,
}

impl Default for AdmissionSpec {
    fn default() -> Self {
        Self {
            enabled: true,
            backlog_min: 32,
            trouble_threshold: EWMA_ONE / 4,
            occupancy_max: 6,
        }
    }
}

impl AdmissionSpec {
    /// The no-controller baseline (admit everything).
    pub fn off() -> Self {
        Self {
            enabled: false,
            ..Self::default()
        }
    }
}

/// Per-worker admission controller state. See the module docs for the
/// control loop.
pub struct Admission {
    spec: AdmissionSpec,
    /// Trouble EWMA in `0..=EWMA_ONE`.
    ewma: u32,
    /// Capacity-class abort total (`aborts_capacity + aborts_timer` — the
    /// planner's capacity class) at the last observation.
    last_capacity: u64,
    /// Decisions taken (admitted + shed).
    decisions: u64,
    /// Requests shed.
    shed: u64,
}

impl Admission {
    /// A controller with no observed history (EWMA 0: admit-biased).
    pub fn new(spec: AdmissionSpec) -> Self {
        Self {
            spec,
            ewma: 0,
            last_capacity: 0,
            decisions: 0,
            shed: 0,
        }
    }

    /// The current trouble EWMA (diagnostics).
    pub fn trouble(&self) -> u32 {
        self.ewma
    }

    /// Requests this controller shed so far.
    pub fn shed_total(&self) -> u64 {
        self.shed
    }

    /// Total in-flight publish occupancy across the runtime's ring shards
    /// plus a large bias when the global lock is observed held — the
    /// "slow-path occupancy" input.
    pub fn occupancy(th: &TmThread<'_>) -> u64 {
        let rt: &TmRuntime = th.rt;
        let summaries = rt.summaries();
        let mut inflight = 0;
        for s in 0..summaries.shard_count() {
            inflight += summaries.shard(s).inflight_publishes();
        }
        if th.hw.nt_read(rt.glock()) != 0 {
            inflight += 4;
        }
        inflight
    }

    /// Decide one group's fate before execution: `true` = admit to the
    /// speculative paths, `false` = shed to the serialized slow path.
    /// `backlog` is the worker's pulled-but-unserved request count.
    pub fn admit(&mut self, backlog: u64, th: &TmThread<'_>) -> bool {
        self.decisions += 1;
        if !self.spec.enabled || backlog <= self.spec.backlog_min {
            return true;
        }
        // Overloaded. Occupancy pressure counts as trouble even before this
        // worker's own groups degrade.
        if Self::occupancy(th) >= self.spec.occupancy_max {
            self.bump(true);
        }
        if self.ewma >= self.spec.trouble_threshold {
            // Shedding: decay toward re-probing the speculative path.
            self.ewma -= self.ewma >> RECOVER_SHIFT;
            self.shed += 1;
            return false;
        }
        true
    }

    /// Feed back an *admitted* group's outcome: the commit path plus the
    /// capacity-class abort delta (cache-geometry overflows *and* timer
    /// quanta — the same class the planner demotes on) since the last
    /// observation.
    pub fn observe(&mut self, path: CommitPath, th: &TmThread<'_>) {
        let caps = th.hw.stats.aborts_capacity + th.hw.stats.aborts_timer;
        let trouble = caps > self.last_capacity || path == CommitPath::GlobalLock;
        self.last_capacity = caps;
        self.bump(trouble);
    }

    fn bump(&mut self, sample: bool) {
        let target: i64 = if sample { EWMA_ONE as i64 } else { 0 };
        let old = self.ewma as i64;
        self.ewma = (old + ((target - old) >> EWMA_SHIFT)).clamp(0, EWMA_ONE as i64) as u32;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_controller_admits_everything() {
        let rt = TmRuntime::with_defaults(1, 64);
        let th = TmThread::new(&rt, 0);
        let mut a = Admission::new(AdmissionSpec::off());
        for _ in 0..100 {
            assert!(a.admit(u64::MAX, &th));
        }
        assert_eq!(a.shed_total(), 0);
    }

    #[test]
    fn sheds_only_under_backlog_and_trouble() {
        let rt = TmRuntime::with_defaults(1, 64);
        let th = TmThread::new(&rt, 0);
        let mut a = Admission::new(AdmissionSpec::default());
        // No backlog: admitted regardless of trouble history.
        for _ in 0..20 {
            a.bump(true);
        }
        assert!(a.admit(0, &th));
        // Backlog + trouble: shed.
        assert!(!a.admit(1000, &th));
        assert!(a.shed_total() >= 1);
        // Sustained shedding decays the EWMA until speculation is re-probed.
        let mut admitted = false;
        for _ in 0..200 {
            if a.admit(1000, &th) {
                admitted = true;
                break;
            }
        }
        assert!(admitted, "controller latched shut: no re-probe");
    }

    #[test]
    fn observe_tracks_paths() {
        let rt = TmRuntime::with_defaults(1, 64);
        let th = TmThread::new(&rt, 0);
        let mut a = Admission::new(AdmissionSpec::default());
        for _ in 0..20 {
            a.observe(CommitPath::GlobalLock, &th);
        }
        assert!(a.trouble() > EWMA_ONE / 2, "GL commits are trouble");
        for _ in 0..40 {
            a.observe(CommitPath::Htm, &th);
        }
        assert!(a.trouble() < EWMA_ONE / 8, "clean fast commits recover");
    }
}
