//! Per-thread recycling arena for signature and journal buffers.
//!
//! Every software-path transaction used to construct three fresh [`Sig`]s
//! (read/write/committed mirrors) and a [`SigJournal`]; for heap-backed
//! geometries that is four `Vec` allocations per transaction on the abort/
//! retry path. The arena keeps retired buffers thread-locally and hands them
//! back on the next `take_*`, so steady-state execution allocates nothing.
//!
//! Lifecycle contract (see `docs/mem-layout.md`):
//!
//! * [`SigArena::take_sig`] returns a signature of the requested spec that is
//!   **provably empty** — recycled buffers are cleared on the way *into* the
//!   pool ([`SigArena::recycle_sig`]), and the arena-reuse proptest checks the
//!   words come back all-zero.
//! * [`SigArena::take_journal`] returns an empty journal; `recycle_journal`
//!   discards any pending entries first, keeping the entry/dirty-bitmap
//!   capacity warm across transactions.
//! * `Sig` inline storage is 64-byte aligned (`CacheAligned` backing), so a
//!   recycled word buffer is cache-line aligned whether it came from the pool
//!   or a fresh allocation.
//!
//! The pools are capped (`POOL_CAP`) so a burst of nested scopes cannot pin
//! unbounded memory; `reuses`/`allocs` counters are drained into the
//! `arena_reuses`/`arena_allocs` statistics by the runtime.

use crate::journal::SigJournal;
use crate::sig::Sig;
use crate::spec::SigSpec;
use std::cell::RefCell;

/// Maximum pooled buffers of each kind kept per thread.
const POOL_CAP: usize = 8;

/// Thread-local pool of retired [`Sig`] and [`SigJournal`] buffers.
#[derive(Debug, Default)]
pub struct SigArena {
    sigs: Vec<Sig>,
    journals: Vec<SigJournal>,
    reuses: u64,
    allocs: u64,
}

thread_local! {
    static ARENA: RefCell<SigArena> = RefCell::new(SigArena::default());
}

impl SigArena {
    /// Run `f` with this thread's arena.
    pub fn with<R>(f: impl FnOnce(&mut SigArena) -> R) -> R {
        ARENA.with(|a| f(&mut a.borrow_mut()))
    }

    /// Take an empty signature of geometry `spec`, recycled if the pool holds
    /// one of matching spec, freshly allocated otherwise.
    pub fn take_sig(&mut self, spec: SigSpec) -> Sig {
        if let Some(i) = self.sigs.iter().position(|s| s.spec() == spec) {
            self.reuses += 1;
            let sig = self.sigs.swap_remove(i);
            debug_assert!(sig.is_empty());
            sig
        } else {
            self.allocs += 1;
            Sig::new(spec)
        }
    }

    /// Return a signature to the pool, clearing it first so the next
    /// [`take_sig`](Self::take_sig) hands out a provably-zeroed buffer.
    pub fn recycle_sig(&mut self, mut sig: Sig) {
        if self.sigs.len() < POOL_CAP {
            sig.clear();
            self.sigs.push(sig);
        }
    }

    /// Take an empty journal, recycled (capacity warm) if available.
    pub fn take_journal(&mut self) -> SigJournal {
        if let Some(mut j) = self.journals.pop() {
            self.reuses += 1;
            j.discard();
            j
        } else {
            self.allocs += 1;
            SigJournal::new()
        }
    }

    /// Return a journal to the pool, discarding any pending entries.
    pub fn recycle_journal(&mut self, mut journal: SigJournal) {
        if self.journals.len() < POOL_CAP {
            journal.discard();
            self.journals.push(journal);
        }
    }

    /// Drain the `(reuses, allocs)` counters accumulated since the last call.
    pub fn take_counters(&mut self) -> (u64, u64) {
        let c = (self.reuses, self.allocs);
        self.reuses = 0;
        self.allocs = 0;
        c
    }

    /// Number of pooled signature buffers (test/bench introspection).
    pub fn pooled_sigs(&self) -> usize {
        self.sigs.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recycles_matching_spec_only() {
        let mut a = SigArena::default();
        let small = SigSpec::new(64);
        let paper = SigSpec::PAPER;
        let s = a.take_sig(paper);
        a.recycle_sig(s);
        // A different spec must not get the pooled buffer.
        let t = a.take_sig(small);
        assert_eq!(t.spec(), small);
        let u = a.take_sig(paper);
        assert_eq!(u.spec(), paper);
        let (reuses, allocs) = a.take_counters();
        assert_eq!((reuses, allocs), (1, 2));
        assert_eq!(a.take_counters(), (0, 0));
    }

    #[test]
    fn recycled_sig_comes_back_zeroed() {
        let mut a = SigArena::default();
        let spec = SigSpec::PAPER;
        let mut s = a.take_sig(spec);
        for addr in 0..257 {
            s.add(addr);
        }
        assert!(!s.is_empty());
        a.recycle_sig(s);
        let s = a.take_sig(spec);
        assert!(s.is_empty());
        assert!(s.words().iter().all(|&w| w == 0));
    }

    #[test]
    fn journal_pool_discards_pending_entries() {
        let mut a = SigArena::default();
        let mut j = a.take_journal();
        j.begin(SigSpec::PAPER);
        j.note(crate::journal::SigSlot::Read, 0, 0xDEAD);
        a.recycle_journal(j);
        let j = a.take_journal();
        assert!(j.is_empty());
    }

    #[test]
    fn pool_is_capped() {
        let mut a = SigArena::default();
        for _ in 0..(POOL_CAP + 4) {
            a.recycle_sig(Sig::new(SigSpec::PAPER));
        }
        assert_eq!(a.pooled_sigs(), POOL_CAP);
    }

    #[test]
    fn thread_local_accessor_round_trips() {
        let sig = SigArena::with(|a| a.take_sig(SigSpec::PAPER));
        SigArena::with(|a| a.recycle_sig(sig));
        let again = SigArena::with(|a| a.take_sig(SigSpec::PAPER));
        assert!(again.is_empty());
    }
}
