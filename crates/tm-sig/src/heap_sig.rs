//! A signature resident in the simulated heap.
//!
//! Signatures accessed *inside* hardware transactions must live in the heap: that is
//! how the simulator charges their footprint against HTM capacity and produces the
//! cache-line-granular false conflicts on shared metadata that the paper analyses
//! (§5.1: "two HTM executions that aim at updating different bits of the same Bloom
//! filter might still conflict if both the bits are stored into the same cache
//! line").

use crate::sig::Sig;
use crate::spec::SigSpec;
use htm_sim::abort::TxResult;
use htm_sim::{Addr, HeapBuilder, HtmThread, HtmTx};

/// Handle to a signature stored at a line-aligned heap address.
#[derive(Clone, Copy, Debug)]
pub struct HeapSig {
    base: Addr,
    spec: SigSpec,
}

impl HeapSig {
    /// Allocate a line-aligned signature in the heap.
    pub fn alloc(b: &mut HeapBuilder, spec: SigSpec) -> Self {
        let base = b.alloc_aligned(spec.words() as usize);
        Self { base, spec }
    }

    /// Wrap an existing heap region (must be line-aligned and `spec.words()` long).
    pub fn at(base: Addr, spec: SigSpec) -> Self {
        Self { base, spec }
    }

    /// The heap address of the first word.
    #[inline]
    pub fn base(&self) -> Addr {
        self.base
    }

    /// Geometry.
    #[inline]
    pub fn spec(&self) -> SigSpec {
        self.spec
    }

    /// Address of word `i`.
    #[inline]
    pub fn word_addr(&self, i: u32) -> Addr {
        self.base + i
    }

    // ---- transactional accessors (inside a hardware transaction) ----

    /// Record `addr` in the signature, transactionally. Skips the store when the bit
    /// is already set (idempotent adds keep the write footprint small).
    pub fn add_tx(&self, tx: &mut HtmTx<'_, '_>, addr: Addr) -> TxResult<()> {
        let (w, m) = self.spec.slot_of(addr);
        let wa = self.word_addr(w);
        let cur = tx.read(wa)?;
        if cur & m == 0 {
            tx.write(wa, cur | m)?;
        }
        Ok(())
    }

    /// Transactional membership test.
    pub fn contains_tx(&self, tx: &mut HtmTx<'_, '_>, addr: Addr) -> TxResult<bool> {
        let (w, m) = self.spec.slot_of(addr);
        Ok(tx.read(self.word_addr(w))? & m != 0)
    }

    /// Transactional intersection test against another heap signature:
    /// `self ∩ other != ∅`.
    pub fn intersects_tx(&self, tx: &mut HtmTx<'_, '_>, other: &HeapSig) -> TxResult<bool> {
        debug_assert_eq!(self.spec, other.spec);
        for i in 0..self.spec.words() {
            let a = tx.read(self.word_addr(i))?;
            if a == 0 {
                continue;
            }
            let b = tx.read(other.word_addr(i))?;
            if a & b != 0 {
                return Ok(true);
            }
        }
        Ok(false)
    }

    /// Transactional masked intersection: `((self − mask) ∩ probe) != ∅`, computed
    /// word-wise as `(self & !mask) & probe`. This is the sub-HTM pre-commit
    /// validation of the paper (Fig. 1 lines 26–27): `self` = global write-locks,
    /// `mask` = the transaction's aggregate write signature (its own locks), `probe`
    /// = the sub-transaction's read or write signature.
    pub fn intersects_masked_tx(
        &self,
        tx: &mut HtmTx<'_, '_>,
        mask: &HeapSig,
        probe: &HeapSig,
    ) -> TxResult<bool> {
        debug_assert_eq!(self.spec, mask.spec);
        debug_assert_eq!(self.spec, probe.spec);
        for i in 0..self.spec.words() {
            let locks = tx.read(self.word_addr(i))?;
            if locks == 0 {
                continue;
            }
            let own = tx.read(mask.word_addr(i))?;
            let others = locks & !own;
            if others == 0 {
                continue;
            }
            let p = tx.read(probe.word_addr(i))?;
            if others & p != 0 {
                return Ok(true);
            }
        }
        Ok(false)
    }

    /// Transactional union: `self |= src`. Used by the sub-HTM commit to acquire
    /// write locks (`write_locks ∪= write_sig`, Fig. 1 line 29). Skips words where
    /// `src` contributes nothing, minimising shared-line writes.
    pub fn union_from_tx(&self, tx: &mut HtmTx<'_, '_>, src: &HeapSig) -> TxResult<()> {
        debug_assert_eq!(self.spec, src.spec);
        for i in 0..self.spec.words() {
            let s = tx.read(src.word_addr(i))?;
            if s == 0 {
                continue;
            }
            let d = tx.read(self.word_addr(i))?;
            if d | s != d {
                tx.write(self.word_addr(i), d | s)?;
            }
        }
        Ok(())
    }

    // ---- non-transactional accessors (software framework) ----

    /// Snapshot the signature into software memory (strongly atomic reads).
    pub fn snapshot_nt(&self, th: &HtmThread<'_>) -> Sig {
        let mut words = Vec::with_capacity(self.spec.words() as usize);
        for i in 0..self.spec.words() {
            words.push(th.nt_read(self.word_addr(i)));
        }
        Sig::from_words(self.spec, words)
    }

    /// Non-transactional intersection with a software signature: visits only the
    /// probe's live words (its nonzero-word mask), early-exit.
    pub fn intersects_nt(&self, th: &HtmThread<'_>, sig: &Sig) -> bool {
        debug_assert_eq!(self.spec, sig.spec());
        for (i, s) in sig.nonzero_words() {
            if th.nt_read(self.word_addr(i)) & s != 0 {
                return true;
            }
        }
        false
    }

    /// Non-transactional clear (software framework resetting local metadata).
    pub fn clear_nt(&self, th: &HtmThread<'_>) {
        for i in 0..self.spec.words() {
            if th.nt_read(self.word_addr(i)) != 0 {
                th.nt_write(self.word_addr(i), 0);
            }
        }
    }

    /// Non-transactional union from a software signature: `self |= sig`, atomic per
    /// word.
    pub fn or_nt(&self, th: &HtmThread<'_>, sig: &Sig) {
        for (i, s) in sig.nonzero_words() {
            th.system().nt_fetch_or_by(th.id(), self.word_addr(i), s);
        }
    }

    /// Non-transactional subtraction: `self &= !sig`, atomic per word. This is the
    /// lock release of the paper's global commit/abort (Fig. 1 lines 48–49, 54–55);
    /// each lock bit is held by at most one global transaction (the sub-HTM
    /// pre-commit validation aborts on foreign locks), so AND-NOT only clears bits
    /// this transaction owns.
    pub fn and_not_nt(&self, th: &HtmThread<'_>, sig: &Sig) {
        for (i, s) in sig.nonzero_words() {
            th.system().nt_fetch_and_by(th.id(), self.word_addr(i), !s);
        }
    }

    /// Fill from a software signature (plain stores; caller must own the region).
    pub fn write_nt(&self, th: &HtmThread<'_>, sig: &Sig) {
        for (i, &s) in sig.words().iter().enumerate() {
            th.nt_write(self.word_addr(i as u32), s);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use htm_sim::{HeapBuilder, HtmConfig, HtmSystem};

    fn setup() -> (HtmSystem, HeapSig, HeapSig, HeapSig) {
        let sys = HtmSystem::new(HtmConfig::default(), 1 << 16);
        let mut b = HeapBuilder::new(1 << 16);
        let spec = SigSpec::PAPER;
        let a = HeapSig::alloc(&mut b, spec);
        let c = HeapSig::alloc(&mut b, spec);
        let d = HeapSig::alloc(&mut b, spec);
        (sys, a, c, d)
    }

    #[test]
    fn alloc_is_line_aligned() {
        let mut b = HeapBuilder::new(4096);
        b.alloc_words(3);
        let s = HeapSig::alloc(&mut b, SigSpec::PAPER);
        assert_eq!(s.base() % 8, 0);
    }

    #[test]
    fn add_and_contains_tx() {
        let (sys, sig, _, _) = setup();
        let mut th = sys.thread(0);
        th.attempt(|tx| {
            sig.add_tx(tx, 4242)?;
            assert!(sig.contains_tx(tx, 4242)?);
            Ok(())
        })
        .unwrap();
        // Visible non-transactionally after commit.
        let snap = sig.snapshot_nt(&th);
        assert!(snap.contains(4242));
    }

    #[test]
    fn intersects_masked_excludes_own_locks() {
        let (sys, locks, own, probe) = setup();
        let th = sys.thread(0);
        let spec = SigSpec::PAPER;
        // "locks" holds bits for addresses 1 and 2; "own" masks out address 1;
        // "probe" contains address 1 only => masked intersection must be empty.
        let mut l = Sig::new(spec);
        l.add(1);
        l.add(2);
        locks.write_nt(&th, &l);
        let mut o = Sig::new(spec);
        o.add(1);
        own.write_nt(&th, &o);
        let mut p = Sig::new(spec);
        p.add(1);
        probe.write_nt(&th, &p);

        let mut th = sys.thread(1);
        let hit = th
            .attempt(|tx| locks.intersects_masked_tx(tx, &own, &probe))
            .unwrap();
        assert!(!hit, "own lock must not count as a conflict");

        // Now probe address 2 (a foreign lock): conflict.
        let mut p2 = Sig::new(spec);
        p2.add(2);
        probe.write_nt(&sys.thread(0), &p2);
        let hit2 = th
            .attempt(|tx| locks.intersects_masked_tx(tx, &own, &probe))
            .unwrap();
        assert!(hit2);
    }

    #[test]
    fn union_and_release_roundtrip() {
        let (sys, locks, mine, _) = setup();
        let th0 = sys.thread(0);
        let spec = SigSpec::PAPER;
        let mut m = Sig::new(spec);
        m.add(77);
        m.add(99);
        mine.write_nt(&th0, &m);

        let mut th = sys.thread(1);
        // Acquire inside HTM.
        th.attempt(|tx| locks.union_from_tx(tx, &mine)).unwrap();
        assert!(locks.snapshot_nt(&th).contains(77));
        // Release in software.
        locks.and_not_nt(&th, &m);
        assert!(locks.snapshot_nt(&th).is_empty());
    }

    #[test]
    fn intersects_nt_matches_software_semantics() {
        let (sys, heap_sig, _, _) = setup();
        let th = sys.thread(0);
        let spec = SigSpec::PAPER;
        let mut v = Sig::new(spec);
        v.add(500);
        heap_sig.write_nt(&th, &v);
        let mut probe = Sig::new(spec);
        probe.add(500);
        assert!(heap_sig.intersects_nt(&th, &probe));
        let mut probe2 = Sig::new(spec);
        probe2.add(501);
        assert_eq!(heap_sig.intersects_nt(&th, &probe2), v.intersects(&probe2));
    }

    #[test]
    fn clear_nt_empties() {
        let (sys, s, _, _) = setup();
        let th = sys.thread(0);
        let mut v = Sig::new(SigSpec::PAPER);
        v.add(1);
        v.add(2);
        s.write_nt(&th, &v);
        s.clear_nt(&th);
        assert!(s.snapshot_nt(&th).is_empty());
    }
}
