//! A signature value in ordinary software memory.
//!
//! The software framework manipulates signatures outside hardware transactions
//! (in-flight validation, lock release, aggregation). [`Sig`] is the plain-old-data
//! representation of a Bloom-filter signature for that purpose.
//!
//! Protocol signatures are *sparse*: a transaction touching a handful of lines sets
//! a handful of bits in a 2048-bit filter. Every [`Sig`] therefore carries a 64-bit
//! **non-zero-word mask** (bit `i % 64` set iff some word `i` is non-zero), kept
//! exact by every mutator, so the filter kernels — intersection, union, subtraction,
//! ring publishing — iterate the few live words via the mask instead of scanning all
//! of them. For geometries of at most 64 words (every practical configuration,
//! including the paper's 32-word filters) the mask identifies words one-to-one; the
//! group fold for larger sweep geometries only ever costs extra word visits, never a
//! missed one.

use crate::align::CacheAligned;
use crate::kernels;
use crate::spec::SigSpec;
use htm_sim::Addr;

/// A Bloom-filter signature held in software memory.
///
/// ```
/// use tm_sig::{Sig, SigSpec};
///
/// let mut reads = Sig::new(SigSpec::PAPER);
/// let mut writes = Sig::new(SigSpec::PAPER);
/// reads.add(100);
/// writes.add(200);
/// assert!(reads.contains(100));          // no false negatives, ever
/// writes.add(100);
/// assert!(reads.intersects(&writes));    // the paper's bitwise-AND conflict test
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Sig {
    spec: SigSpec,
    /// Non-zero-word mask: bit `i % 64` is set iff some word `i` congruent to it is
    /// non-zero. A pure function of the words, so the derived `PartialEq` stays
    /// consistent.
    mask: u64,
    storage: Storage,
}

/// Word count covered by the inline representation: 32 words = 2048 bits, exactly
/// [`SigSpec::PAPER`]. Protocol signatures therefore never allocate; only larger
/// experimental geometries (e.g. the 8192-bit sweeps in the ablation tests) spill.
const INLINE_WORDS: usize = 32;

/// Signature bit storage. Both variants keep the invariant that words beyond
/// `spec.words()` are zero, so the derived `PartialEq` (which compares the whole
/// inline array) agrees with comparing the active slices.
/// The size skew between the variants is deliberate: the inline array *is* the
/// optimisation (boxing it, as the lint suggests, would reintroduce the
/// allocation this representation exists to avoid).
#[allow(clippy::large_enum_variant)]
#[derive(Clone, Debug, PartialEq, Eq)]
enum Storage {
    /// Up to 2048 bits, held inline: `Sig::new(SigSpec::PAPER)` is allocation-free
    /// and the filter kernels run over a fixed-size, cache-line-aligned
    /// `[u64; 32]` (4 whole lines, never straddling a fifth) the compiler can
    /// fully unroll/vectorise.
    Inline(CacheAligned<[u64; INLINE_WORDS]>),
    /// Larger geometries fall back to a heap slice.
    Heap(Box<[u64]>),
}

// The inline buffer is exactly 4 cache lines and starts on a line boundary, so
// the paper's 2048-bit signature occupies 4 lines, not 5.
const _: () = {
    use std::mem::{align_of, size_of};
    assert!(size_of::<CacheAligned<[u64; INLINE_WORDS]>>() == 4 * crate::align::CACHE_LINE);
    assert!(align_of::<Sig>() == crate::align::CACHE_LINE);
};

impl Sig {
    /// An empty signature with the given geometry. Allocation-free for geometries
    /// up to 2048 bits (the paper's configuration).
    pub fn new(spec: SigSpec) -> Self {
        let n = spec.words() as usize;
        let storage = if n <= INLINE_WORDS {
            Storage::Inline(CacheAligned::new([0u64; INLINE_WORDS]))
        } else {
            Storage::Heap(vec![0u64; n].into_boxed_slice())
        };
        Self {
            spec,
            mask: 0,
            storage,
        }
    }

    /// Build from raw words (e.g. a heap snapshot). Panics on length mismatch.
    pub fn from_words(spec: SigSpec, words: Vec<u64>) -> Self {
        assert_eq!(words.len(), spec.words() as usize);
        let mut sig = Self::new(spec);
        sig.raw_words_mut().copy_from_slice(&words);
        sig.mask = mask_of(&words);
        sig
    }

    /// The geometry of this signature.
    #[inline]
    pub fn spec(&self) -> SigSpec {
        self.spec
    }

    /// Raw word access (exactly `spec().words()` words).
    #[inline]
    pub fn words(&self) -> &[u64] {
        match &self.storage {
            Storage::Inline(a) => &a.0[..self.spec.words() as usize],
            Storage::Heap(b) => b,
        }
    }

    /// Mutable word access that bypasses mask maintenance — crate-internal only;
    /// every caller re-establishes the mask invariant itself (audited by
    /// [`Sig::assert_mask_invariant`]).
    #[inline]
    pub(crate) fn raw_words_mut(&mut self) -> &mut [u64] {
        match &mut self.storage {
            Storage::Inline(a) => &mut a.0[..self.spec.words() as usize],
            Storage::Heap(b) => b,
        }
    }

    /// Recompute the non-zero-word mask from the words (crate-internal: the
    /// journal's bulk rollback restores raw words and rebuilds the mask once).
    #[inline]
    pub(crate) fn rebuild_mask(&mut self) {
        self.mask = kernels::mask_of(self.words());
    }

    /// Debug-only audit of the mask invariant: recompute the non-zero-word mask
    /// from scratch with the scalar oracle and assert it matches the maintained
    /// one. Compiles to nothing in release builds; the sig/journal proptests
    /// call it after every mutation sequence, closing the audit hole around
    /// `raw_words_mut`'s "every caller re-establishes the invariant" contract.
    #[inline]
    pub fn assert_mask_invariant(&self) {
        debug_assert_eq!(
            self.mask,
            kernels::scalar::mask_of(self.words()),
            "non-zero-word mask out of sync with words"
        );
    }

    /// The non-zero-word mask (bit `i % 64` set iff some word `i` is non-zero).
    /// For geometries of at most 64 words this identifies the live words exactly —
    /// the ring stores it verbatim as the entry mask.
    #[inline]
    pub fn nonzero_mask(&self) -> u64 {
        self.mask
    }

    /// Word `i`'s current value.
    #[inline]
    pub fn word(&self, i: u32) -> u64 {
        self.words()[i as usize]
    }

    /// Overwrite word `i`, maintaining the mask (the journal's rollback path).
    #[inline]
    pub fn set_word(&mut self, i: u32, v: u64) {
        let bit = 1u64 << (i % 64);
        self.raw_words_mut()[i as usize] = v;
        if v != 0 {
            self.mask |= bit;
        } else if self.spec.words() <= 64 {
            self.mask &= !bit;
        } else {
            // Folded group: the bit stays only if a sibling word is non-zero.
            let n = self.spec.words() as usize;
            let mut j = (i % 64) as usize;
            let mut any = false;
            while j < n {
                if self.words()[j] != 0 {
                    any = true;
                    break;
                }
                j += 64;
            }
            if !any {
                self.mask &= !bit;
            }
        }
    }

    /// OR `m` into word `w` (a precomputed [`SigSpec::slot_of`] slot), returning
    /// whether any bit was newly set. The protocol hot paths use this to skip the
    /// heap-copy store for repeated accesses.
    #[inline]
    pub fn add_slot(&mut self, w: u32, m: u64) -> bool {
        debug_assert_ne!(m, 0);
        let word = &mut self.raw_words_mut()[w as usize];
        let newly = *word & m != m;
        *word |= m;
        self.mask |= 1u64 << (w % 64);
        newly
    }

    /// Record an address.
    #[inline]
    pub fn add(&mut self, addr: Addr) {
        let (w, m) = self.spec.slot_of(addr);
        self.add_slot(w, m);
    }

    /// Bloom-filter membership: may return true for addresses never added (false
    /// positives), never false for added ones.
    #[inline]
    pub fn contains(&self, addr: Addr) -> bool {
        let (w, m) = self.spec.slot_of(addr);
        self.words()[w as usize] & m != 0
    }

    /// True if no bit is set.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.mask == 0
    }

    /// Clear all bits. Sparse: only the live words are zeroed.
    #[inline]
    pub fn clear(&mut self) {
        let mut m = self.mask;
        let n = self.spec.words() as usize;
        while m != 0 {
            let b = m.trailing_zeros() as usize;
            m &= m - 1;
            let mut i = b;
            while i < n {
                self.raw_words_mut()[i] = 0;
                i += 64;
            }
        }
        self.mask = 0;
    }

    /// `self |= other`. Routed through the mask-guided OR kernel (sparse
    /// sources touch only their live words; dense sources take the 4-wide
    /// bulk walk); the mask union is exact (a group is non-zero afterwards
    /// iff it was non-zero in either operand).
    #[inline]
    pub fn union_with(&mut self, other: &Sig) {
        debug_assert_eq!(self.spec, other.spec);
        if other.mask == 0 {
            return;
        }
        kernels::or_into_masked(self.raw_words_mut(), other.words(), other.mask);
        self.mask |= other.mask;
        self.assert_mask_invariant();
    }

    /// `self &= !other` (remove the other signature's bits). Routed through
    /// the mask-guided AND-NOT kernel: only groups live in both operands are
    /// touched (the common write-lock release of a few-word write set costs a
    /// word or two), and the kernel reports exactly which groups emptied, so
    /// the mask is maintained incrementally — no full-width rebuild.
    #[inline]
    pub fn subtract(&mut self, other: &Sig) {
        debug_assert_eq!(self.spec, other.spec);
        let shared = self.mask & other.mask;
        if shared == 0 {
            return;
        }
        self.mask &= !kernels::and_not_masked(self.raw_words_mut(), other.words(), shared);
        self.assert_mask_invariant();
    }

    /// True if the two signatures share any bit (the "bitwise AND" conflict test of
    /// the paper's commit validations). The mask AND settles the common
    /// disjoint case without reading a word; live pairs fall to the
    /// mask-guided intersect kernel, which reads only groups live in both
    /// operands (or the 4-wide bulk test when they are dense).
    #[inline]
    pub fn intersects(&self, other: &Sig) -> bool {
        debug_assert_eq!(self.spec, other.spec);
        let shared = self.mask & other.mask;
        if shared == 0 {
            return false;
        }
        kernels::intersect_any_masked(self.words(), other.words(), shared)
    }

    /// Number of set bits (diagnostics). Routed through the popcount-density
    /// kernel.
    #[inline]
    pub fn popcount(&self) -> u32 {
        kernels::popcount(self.words()) as u32
    }

    /// Conservative 64-bit fold of the whole signature: the OR of every word.
    /// Two signatures whose folds are disjoint are themselves disjoint (bit `b`
    /// of the fold is set iff *some* word has bit `b`), so a fold is a
    /// one-word Bloom probe — false positives possible, false negatives not.
    /// The sharded ring's combined group fast pass keys off this.
    #[inline]
    pub fn fold_word(&self) -> u64 {
        kernels::fold_live(self.words(), u64::MAX, self.mask)
    }

    /// [`Sig::fold_word`] restricted to the words selected by `word_mask`
    /// (the per-shard fold a publisher contributes to its shard's group probe
    /// word). Words at index 64 and beyond — folded-geometry siblings — always
    /// participate, exactly as before. Routed through the mask-guided
    /// [`kernels::fold_live`]: `validate_touched_nt` issues this fold once per
    /// touched shard per validation, so a sparse read signature must not pay a
    /// full-geometry walk here.
    #[inline]
    pub fn fold_word_masked(&self, word_mask: u64) -> u64 {
        kernels::fold_live(self.words(), word_mask, self.mask)
    }

    /// Iterate the non-zero words as `(index, word)` pairs, driven by the mask.
    #[inline]
    pub fn nonzero_words(&self) -> NonzeroWords<'_> {
        NonzeroWords {
            words: self.words(),
            mask: self.mask,
            cursor: usize::MAX,
        }
    }
}

/// Compute the non-zero-word mask of a word slice from scratch.
fn mask_of(words: &[u64]) -> u64 {
    kernels::mask_of(words)
}

/// Iterator over a signature's non-zero `(index, word)` pairs (see
/// [`Sig::nonzero_words`]). For folded geometries (> 64 words) a group may contain
/// zero words, which are filtered out here — the mask never hides a non-zero word.
pub struct NonzeroWords<'a> {
    words: &'a [u64],
    mask: u64,
    cursor: usize,
}

impl Iterator for NonzeroWords<'_> {
    type Item = (u32, u64);

    #[inline]
    fn next(&mut self) -> Option<(u32, u64)> {
        loop {
            if self.cursor < self.words.len() {
                let i = self.cursor;
                self.cursor += 64;
                let w = self.words[i];
                if w != 0 {
                    return Some((i as u32, w));
                }
                continue;
            }
            if self.mask == 0 {
                return None;
            }
            self.cursor = self.mask.trailing_zeros() as usize;
            self.mask &= self.mask - 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> SigSpec {
        SigSpec::PAPER
    }

    /// Every mutator must leave the mask exactly equal to the recomputed one.
    fn assert_mask_exact(s: &Sig) {
        assert_eq!(s.nonzero_mask(), mask_of(s.words()), "mask out of sync");
        s.assert_mask_invariant();
    }

    #[test]
    fn no_false_negatives() {
        let mut s = Sig::new(spec());
        for addr in (0..50_000).step_by(131) {
            s.add(addr);
        }
        for addr in (0..50_000).step_by(131) {
            assert!(s.contains(addr));
        }
        assert_mask_exact(&s);
    }

    #[test]
    fn empty_and_clear() {
        let mut s = Sig::new(spec());
        assert!(s.is_empty());
        s.add(7);
        assert!(!s.is_empty());
        s.clear();
        assert!(s.is_empty());
        assert_eq!(s.popcount(), 0);
        assert_mask_exact(&s);
    }

    #[test]
    fn union_subtract_inverse() {
        let mut a = Sig::new(spec());
        let mut b = Sig::new(spec());
        a.add(1);
        a.add(2);
        b.add(100);
        b.add(200);
        let orig = a.clone();
        a.union_with(&b);
        assert!(a.contains(100));
        assert_mask_exact(&a);
        a.subtract(&b);
        // Subtracting b restores a unless a and b collided; with these addresses
        // collisions would make the test fail loudly, which is acceptable for a
        // deterministic hash.
        assert_eq!(a, orig);
        assert_mask_exact(&a);
    }

    #[test]
    fn intersects_detects_shared_bits() {
        let mut a = Sig::new(spec());
        let mut b = Sig::new(spec());
        a.add(42);
        b.add(43);
        let disjoint = !a.intersects(&b);
        b.add(42);
        assert!(a.intersects(&b));
        assert!(disjoint || spec().bit_of(42) == spec().bit_of(43));
    }

    #[test]
    fn inline_for_paper_heap_for_larger() {
        // PAPER (2048 bits) fits the inline array exactly.
        let a = Sig::new(SigSpec::PAPER);
        assert_eq!(a.words().len(), 32);
        // An 8192-bit sweep geometry spills to the heap transparently.
        let mut big = Sig::new(SigSpec::new(8192));
        assert_eq!(big.words().len(), 128);
        big.add(12345);
        assert!(big.contains(12345));
        let round = Sig::from_words(SigSpec::new(8192), big.words().to_vec());
        assert_eq!(round, big);
        // Sub-inline specs expose only their active slice.
        let mut small = Sig::new(SigSpec::new(64));
        assert_eq!(small.words().len(), 1);
        small.add(3);
        assert_eq!(small.clone(), small);
        small.clear();
        assert!(small.is_empty());
    }

    #[test]
    fn false_positive_rate_reasonable() {
        let mut s = Sig::new(spec());
        for addr in 0..200u32 {
            s.add(addr * 7919);
        }
        let mut fp = 0;
        let probes = 10_000u32;
        for i in 0..probes {
            let addr = 10_000_000 + i;
            if s.contains(addr) {
                fp += 1;
            }
        }
        // 200 of 2048 bits set => ~9.7% expected false-positive rate.
        let rate = fp as f64 / probes as f64;
        assert!(rate < 0.2, "false positive rate too high: {rate}");
    }

    #[test]
    fn nonzero_words_visits_exactly_the_live_words() {
        let mut s = Sig::new(spec());
        for addr in [3u32, 5000, 77777, 123456] {
            s.add(addr);
        }
        let visited: Vec<(u32, u64)> = s.nonzero_words().collect();
        let expected: Vec<(u32, u64)> = s
            .words()
            .iter()
            .enumerate()
            .filter(|(_, &w)| w != 0)
            .map(|(i, &w)| (i as u32, w))
            .collect();
        let mut sorted = visited.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, expected);
        assert!(!visited.is_empty());
    }

    #[test]
    fn add_slot_reports_newly_set() {
        let mut s = Sig::new(spec());
        let (w, m) = spec().slot_of(42);
        assert!(s.add_slot(w, m));
        assert!(!s.add_slot(w, m), "second add of the same bit is not new");
        assert!(s.contains(42));
        assert_mask_exact(&s);
    }

    #[test]
    fn set_word_maintains_mask() {
        let mut s = Sig::new(spec());
        s.set_word(5, 0b1010);
        assert_eq!(s.word(5), 0b1010);
        assert!(!s.is_empty());
        assert_mask_exact(&s);
        s.set_word(5, 0);
        assert!(s.is_empty());
        assert_mask_exact(&s);
    }

    #[test]
    fn folded_mask_never_hides_words() {
        // 128-word geometry: words 3 and 67 share mask bit 3. Clearing one must
        // keep the group live until both are zero.
        let big = SigSpec::new(8192);
        let mut s = Sig::new(big);
        s.set_word(3, 7);
        s.set_word(67, 9);
        assert_eq!(s.nonzero_mask(), 1 << 3);
        let seen: Vec<(u32, u64)> = s.nonzero_words().collect();
        assert_eq!(seen, vec![(3, 7), (67, 9)]);
        s.set_word(3, 0);
        assert_eq!(s.nonzero_mask(), 1 << 3, "sibling word 67 keeps the group");
        assert_eq!(s.nonzero_words().collect::<Vec<_>>(), vec![(67, 9)]);
        s.set_word(67, 0);
        assert!(s.is_empty());
        assert_mask_exact(&s);
    }

    #[test]
    fn sparse_ops_match_dense_on_folded_geometry() {
        let big = SigSpec::new(8192);
        let mut a = Sig::new(big);
        let mut b = Sig::new(big);
        for addr in (0..40_000).step_by(613) {
            a.add(addr);
        }
        for addr in (0..40_000).step_by(917) {
            b.add(addr);
        }
        assert_mask_exact(&a);
        assert_mask_exact(&b);
        let dense_hit = a
            .words()
            .iter()
            .zip(b.words())
            .any(|(&x, &y)| x & y != 0);
        assert_eq!(a.intersects(&b), dense_hit);
        let mut u = a.clone();
        u.union_with(&b);
        assert_mask_exact(&u);
        u.subtract(&b);
        assert_mask_exact(&u);
        let mut diff = a.clone();
        diff.subtract(&b);
        for (i, (&x, &y)) in a.words().iter().zip(b.words()).enumerate() {
            assert_eq!(diff.words()[i], x & !y);
        }
    }
}
