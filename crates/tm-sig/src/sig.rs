//! A signature value in ordinary software memory.
//!
//! The software framework manipulates signatures outside hardware transactions
//! (in-flight validation, lock release, aggregation). [`Sig`] is the plain-old-data
//! representation of a Bloom-filter signature for that purpose.

use crate::spec::SigSpec;
use htm_sim::Addr;

/// A Bloom-filter signature held in software memory.
///
/// ```
/// use tm_sig::{Sig, SigSpec};
///
/// let mut reads = Sig::new(SigSpec::PAPER);
/// let mut writes = Sig::new(SigSpec::PAPER);
/// reads.add(100);
/// writes.add(200);
/// assert!(reads.contains(100));          // no false negatives, ever
/// writes.add(100);
/// assert!(reads.intersects(&writes));    // the paper's bitwise-AND conflict test
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Sig {
    spec: SigSpec,
    words: Box<[u64]>,
}

impl Sig {
    /// An empty signature with the given geometry.
    pub fn new(spec: SigSpec) -> Self {
        Self {
            spec,
            words: vec![0u64; spec.words() as usize].into_boxed_slice(),
        }
    }

    /// Build from raw words (e.g. a heap snapshot). Panics on length mismatch.
    pub fn from_words(spec: SigSpec, words: Vec<u64>) -> Self {
        assert_eq!(words.len(), spec.words() as usize);
        Self {
            spec,
            words: words.into_boxed_slice(),
        }
    }

    /// The geometry of this signature.
    #[inline]
    pub fn spec(&self) -> SigSpec {
        self.spec
    }

    /// Raw word access.
    #[inline]
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Raw mutable word access (protocol fast paths that maintain the heap copy and
    /// the mirror in lock-step).
    #[inline]
    pub fn words_mut(&mut self) -> &mut [u64] {
        &mut self.words
    }

    /// Record an address.
    #[inline]
    pub fn add(&mut self, addr: Addr) {
        let (w, m) = self.spec.slot_of(addr);
        self.words[w as usize] |= m;
    }

    /// Bloom-filter membership: may return true for addresses never added (false
    /// positives), never false for added ones.
    #[inline]
    pub fn contains(&self, addr: Addr) -> bool {
        let (w, m) = self.spec.slot_of(addr);
        self.words[w as usize] & m != 0
    }

    /// True if no bit is set.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Clear all bits.
    pub fn clear(&mut self) {
        self.words.fill(0);
    }

    /// `self |= other`.
    pub fn union_with(&mut self, other: &Sig) {
        debug_assert_eq!(self.spec, other.spec);
        for (a, b) in self.words.iter_mut().zip(other.words.iter()) {
            *a |= b;
        }
    }

    /// `self &= !other` (remove the other signature's bits).
    pub fn subtract(&mut self, other: &Sig) {
        debug_assert_eq!(self.spec, other.spec);
        for (a, b) in self.words.iter_mut().zip(other.words.iter()) {
            *a &= !b;
        }
    }

    /// True if the two signatures share any bit (the "bitwise AND" conflict test of
    /// the paper's commit validations).
    pub fn intersects(&self, other: &Sig) -> bool {
        debug_assert_eq!(self.spec, other.spec);
        self.words
            .iter()
            .zip(other.words.iter())
            .any(|(&a, &b)| a & b != 0)
    }

    /// Number of set bits (diagnostics).
    pub fn popcount(&self) -> u32 {
        self.words.iter().map(|w| w.count_ones()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> SigSpec {
        SigSpec::PAPER
    }

    #[test]
    fn no_false_negatives() {
        let mut s = Sig::new(spec());
        for addr in (0..50_000).step_by(131) {
            s.add(addr);
        }
        for addr in (0..50_000).step_by(131) {
            assert!(s.contains(addr));
        }
    }

    #[test]
    fn empty_and_clear() {
        let mut s = Sig::new(spec());
        assert!(s.is_empty());
        s.add(7);
        assert!(!s.is_empty());
        s.clear();
        assert!(s.is_empty());
        assert_eq!(s.popcount(), 0);
    }

    #[test]
    fn union_subtract_inverse() {
        let mut a = Sig::new(spec());
        let mut b = Sig::new(spec());
        a.add(1);
        a.add(2);
        b.add(100);
        b.add(200);
        let orig = a.clone();
        a.union_with(&b);
        assert!(a.contains(100));
        a.subtract(&b);
        // Subtracting b restores a unless a and b collided; with these addresses
        // collisions would make the test fail loudly, which is acceptable for a
        // deterministic hash.
        assert_eq!(a, orig);
    }

    #[test]
    fn intersects_detects_shared_bits() {
        let mut a = Sig::new(spec());
        let mut b = Sig::new(spec());
        a.add(42);
        b.add(43);
        let disjoint = !a.intersects(&b);
        b.add(42);
        assert!(a.intersects(&b));
        assert!(disjoint || spec().bit_of(42) == spec().bit_of(43));
    }

    #[test]
    fn false_positive_rate_reasonable() {
        let mut s = Sig::new(spec());
        for addr in 0..200u32 {
            s.add(addr * 7919);
        }
        let mut fp = 0;
        let probes = 10_000u32;
        for i in 0..probes {
            let addr = 10_000_000 + i;
            if s.contains(addr) {
                fp += 1;
            }
        }
        // 200 of 2048 bits set => ~9.7% expected false-positive rate.
        let rate = fp as f64 / probes as f64;
        assert!(rate < 0.2, "false positive rate too high: {rate}");
    }
}
