//! A signature value in ordinary software memory.
//!
//! The software framework manipulates signatures outside hardware transactions
//! (in-flight validation, lock release, aggregation). [`Sig`] is the plain-old-data
//! representation of a Bloom-filter signature for that purpose.

use crate::spec::SigSpec;
use htm_sim::Addr;

/// A Bloom-filter signature held in software memory.
///
/// ```
/// use tm_sig::{Sig, SigSpec};
///
/// let mut reads = Sig::new(SigSpec::PAPER);
/// let mut writes = Sig::new(SigSpec::PAPER);
/// reads.add(100);
/// writes.add(200);
/// assert!(reads.contains(100));          // no false negatives, ever
/// writes.add(100);
/// assert!(reads.intersects(&writes));    // the paper's bitwise-AND conflict test
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Sig {
    spec: SigSpec,
    storage: Storage,
}

/// Word count covered by the inline representation: 32 words = 2048 bits, exactly
/// [`SigSpec::PAPER`]. Protocol signatures therefore never allocate; only larger
/// experimental geometries (e.g. the 8192-bit sweeps in the ablation tests) spill.
const INLINE_WORDS: usize = 32;

/// Signature bit storage. Both variants keep the invariant that words beyond
/// `spec.words()` are zero, so the derived `PartialEq` (which compares the whole
/// inline array) agrees with comparing the active slices.
#[derive(Clone, Debug, PartialEq, Eq)]
enum Storage {
    /// Up to 2048 bits, held inline: `Sig::new(SigSpec::PAPER)` is allocation-free
    /// and the filter kernels run over a fixed-size `[u64; 32]` the compiler can
    /// fully unroll/vectorise.
    Inline([u64; INLINE_WORDS]),
    /// Larger geometries fall back to a heap slice.
    Heap(Box<[u64]>),
}

impl Sig {
    /// An empty signature with the given geometry. Allocation-free for geometries
    /// up to 2048 bits (the paper's configuration).
    pub fn new(spec: SigSpec) -> Self {
        let n = spec.words() as usize;
        let storage = if n <= INLINE_WORDS {
            Storage::Inline([0u64; INLINE_WORDS])
        } else {
            Storage::Heap(vec![0u64; n].into_boxed_slice())
        };
        Self { spec, storage }
    }

    /// Build from raw words (e.g. a heap snapshot). Panics on length mismatch.
    pub fn from_words(spec: SigSpec, words: Vec<u64>) -> Self {
        assert_eq!(words.len(), spec.words() as usize);
        let mut sig = Self::new(spec);
        sig.words_mut().copy_from_slice(&words);
        sig
    }

    /// The geometry of this signature.
    #[inline]
    pub fn spec(&self) -> SigSpec {
        self.spec
    }

    /// Raw word access (exactly `spec().words()` words).
    #[inline]
    pub fn words(&self) -> &[u64] {
        match &self.storage {
            Storage::Inline(a) => &a[..self.spec.words() as usize],
            Storage::Heap(b) => b,
        }
    }

    /// Raw mutable word access (protocol fast paths that maintain the heap copy and
    /// the mirror in lock-step).
    #[inline]
    pub fn words_mut(&mut self) -> &mut [u64] {
        match &mut self.storage {
            Storage::Inline(a) => &mut a[..self.spec.words() as usize],
            Storage::Heap(b) => b,
        }
    }

    /// Record an address.
    #[inline]
    pub fn add(&mut self, addr: Addr) {
        let (w, m) = self.spec.slot_of(addr);
        self.words_mut()[w as usize] |= m;
    }

    /// Bloom-filter membership: may return true for addresses never added (false
    /// positives), never false for added ones.
    #[inline]
    pub fn contains(&self, addr: Addr) -> bool {
        let (w, m) = self.spec.slot_of(addr);
        self.words()[w as usize] & m != 0
    }

    /// True if no bit is set.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.words().iter().all(|&w| w == 0)
    }

    /// Clear all bits.
    #[inline]
    pub fn clear(&mut self) {
        match &mut self.storage {
            Storage::Inline(a) => *a = [0u64; INLINE_WORDS],
            Storage::Heap(b) => b.fill(0),
        }
    }

    /// `self |= other`.
    #[inline]
    pub fn union_with(&mut self, other: &Sig) {
        debug_assert_eq!(self.spec, other.spec);
        for (a, b) in self.words_mut().iter_mut().zip(other.words().iter()) {
            *a |= b;
        }
    }

    /// `self &= !other` (remove the other signature's bits).
    #[inline]
    pub fn subtract(&mut self, other: &Sig) {
        debug_assert_eq!(self.spec, other.spec);
        for (a, b) in self.words_mut().iter_mut().zip(other.words().iter()) {
            *a &= !b;
        }
    }

    /// True if the two signatures share any bit (the "bitwise AND" conflict test of
    /// the paper's commit validations).
    #[inline]
    pub fn intersects(&self, other: &Sig) -> bool {
        debug_assert_eq!(self.spec, other.spec);
        self.words()
            .iter()
            .zip(other.words().iter())
            .any(|(&a, &b)| a & b != 0)
    }

    /// Number of set bits (diagnostics).
    #[inline]
    pub fn popcount(&self) -> u32 {
        self.words().iter().map(|w| w.count_ones()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> SigSpec {
        SigSpec::PAPER
    }

    #[test]
    fn no_false_negatives() {
        let mut s = Sig::new(spec());
        for addr in (0..50_000).step_by(131) {
            s.add(addr);
        }
        for addr in (0..50_000).step_by(131) {
            assert!(s.contains(addr));
        }
    }

    #[test]
    fn empty_and_clear() {
        let mut s = Sig::new(spec());
        assert!(s.is_empty());
        s.add(7);
        assert!(!s.is_empty());
        s.clear();
        assert!(s.is_empty());
        assert_eq!(s.popcount(), 0);
    }

    #[test]
    fn union_subtract_inverse() {
        let mut a = Sig::new(spec());
        let mut b = Sig::new(spec());
        a.add(1);
        a.add(2);
        b.add(100);
        b.add(200);
        let orig = a.clone();
        a.union_with(&b);
        assert!(a.contains(100));
        a.subtract(&b);
        // Subtracting b restores a unless a and b collided; with these addresses
        // collisions would make the test fail loudly, which is acceptable for a
        // deterministic hash.
        assert_eq!(a, orig);
    }

    #[test]
    fn intersects_detects_shared_bits() {
        let mut a = Sig::new(spec());
        let mut b = Sig::new(spec());
        a.add(42);
        b.add(43);
        let disjoint = !a.intersects(&b);
        b.add(42);
        assert!(a.intersects(&b));
        assert!(disjoint || spec().bit_of(42) == spec().bit_of(43));
    }

    #[test]
    fn inline_for_paper_heap_for_larger() {
        // PAPER (2048 bits) fits the inline array exactly.
        let a = Sig::new(SigSpec::PAPER);
        assert_eq!(a.words().len(), 32);
        // An 8192-bit sweep geometry spills to the heap transparently.
        let mut big = Sig::new(SigSpec::new(8192));
        assert_eq!(big.words().len(), 128);
        big.add(12345);
        assert!(big.contains(12345));
        let round = Sig::from_words(SigSpec::new(8192), big.words().to_vec());
        assert_eq!(round, big);
        // Sub-inline specs expose only their active slice.
        let mut small = Sig::new(SigSpec::new(64));
        assert_eq!(small.words().len(), 1);
        small.add(3);
        assert_eq!(small.clone(), small);
        small.clear();
        assert!(small.is_empty());
    }

    #[test]
    fn false_positive_rate_reasonable() {
        let mut s = Sig::new(spec());
        for addr in 0..200u32 {
            s.add(addr * 7919);
        }
        let mut fp = 0;
        let probes = 10_000u32;
        for i in 0..probes {
            let addr = 10_000_000 + i;
            if s.contains(addr) {
                fp += 1;
            }
        }
        // 200 of 2048 bits set => ~9.7% expected false-positive rate.
        let rate = fp as f64 / probes as f64;
        assert!(rate < 0.2, "false positive rate too high: {rate}");
    }
}
