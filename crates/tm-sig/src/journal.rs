//! Word-level signature journal: allocation-free rollback for sub-HTM retries.
//!
//! A failed sub-HTM attempt must forget the signature bits it recorded, because the
//! hardware writes they describe never published. The original implementation saved
//! full clones of the read- and write-signature mirrors at segment entry and
//! `clone_from`-restored them on failure — three 32-word copies per segment even
//! when the segment touches two lines. [`SigJournal`] replaces the clones with an
//! undo journal: the *first* time a segment attempt dirties a signature word, the
//! word's old value is recorded; rollback replays the recorded words (and nothing
//! else), and success discards the journal. All storage is reused across segments
//! and transactions, so a warmed-up executor performs no heap allocation here.
//!
//! Deduplication uses one exact dirty bitmap per signature (not the folded
//! [`Sig::nonzero_mask`]): for geometries beyond 64 words a folded bitmap would
//! alias two words onto one bit and silently drop the second word's old value.

use crate::sig::Sig;
use crate::spec::SigSpec;

/// Which of the two per-transaction signatures a journal entry belongs to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SigSlot {
    /// The read-set signature mirror.
    Read = 0,
    /// The write-set signature mirror.
    Write = 1,
}

/// One segment attempt's signature undo journal (see the module docs).
#[derive(Debug, Default)]
pub struct SigJournal {
    /// `(slot, word index, old value)`, in first-dirty order.
    entries: Vec<(SigSlot, u32, u64)>,
    /// Exact per-slot dirty bitmaps (index `w` lives at bit `w % 64` of word
    /// `w / 64`), sized to the current geometry by [`SigJournal::begin`].
    dirty: [Vec<u64>; 2],
}

impl SigJournal {
    /// An empty journal. Storage grows on first use and is then reused forever.
    pub fn new() -> Self {
        Self::default()
    }

    /// Start journalling a segment for signatures of geometry `spec`. The journal
    /// must be empty (the previous segment ended in [`SigJournal::rollback`] or
    /// [`SigJournal::discard`]).
    pub fn begin(&mut self, spec: SigSpec) {
        debug_assert!(self.entries.is_empty(), "journal not closed");
        let need = (spec.words() as usize).div_ceil(64);
        for d in &mut self.dirty {
            if d.len() != need {
                d.clear();
                d.resize(need, 0);
            }
        }
    }

    /// Record `old` as the pre-segment value of `slot`'s word `w`, once per
    /// `(slot, word)` — later calls for the same word are ignored, keeping the
    /// first (correct) old value.
    #[inline]
    pub fn note(&mut self, slot: SigSlot, w: u32, old: u64) {
        let d = &mut self.dirty[slot as usize][w as usize / 64];
        let bit = 1u64 << (w % 64);
        if *d & bit == 0 {
            *d |= bit;
            self.entries.push((slot, w, old));
        }
    }

    /// Undo every recorded word, restoring `rsig`/`wsig` to their segment-entry
    /// values, and leave the journal empty for the next attempt.
    ///
    /// [`note`](Self::note) keeps exactly one entry per `(slot, word)` — the
    /// first (correct) old value — so replay order is irrelevant and each word
    /// can be restored *raw*, with one kernel-driven mask rebuild per touched
    /// signature instead of `set_word`'s per-word mask bookkeeping (which for
    /// folded geometries re-scans sibling words on every zero restore).
    pub fn rollback(&mut self, rsig: &mut Sig, wsig: &mut Sig) {
        let mut touched = [false; 2];
        while let Some((slot, w, old)) = self.entries.pop() {
            let sig = match slot {
                SigSlot::Read => &mut *rsig,
                SigSlot::Write => &mut *wsig,
            };
            sig.raw_words_mut()[w as usize] = old;
            touched[slot as usize] = true;
            self.dirty[slot as usize][w as usize / 64] &= !(1u64 << (w % 64));
        }
        if touched[SigSlot::Read as usize] {
            rsig.rebuild_mask();
        }
        if touched[SigSlot::Write as usize] {
            wsig.rebuild_mask();
        }
        rsig.assert_mask_invariant();
        wsig.assert_mask_invariant();
    }

    /// The segment committed: forget the journal (keeping its storage).
    pub fn discard(&mut self) {
        let Self { entries, dirty } = self;
        for &(slot, w, _) in entries.iter() {
            dirty[slot as usize][w as usize / 64] &= !(1u64 << (w % 64));
        }
        entries.clear();
    }

    /// Number of journalled words (diagnostics).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is journalled.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// The clone-based save/restore this journal replaced, kept as the differential
/// oracle (tests) and the microbenchmark baseline — the role
/// `line_table_ref` plays for the packed line table.
#[derive(Debug)]
pub struct CloneSaved {
    rsig: Sig,
    wsig: Sig,
}

impl CloneSaved {
    /// Snapshot both mirrors at segment entry (the old `wmir_save`/`rmir_save`).
    pub fn save(rsig: &Sig, wsig: &Sig) -> Self {
        Self {
            rsig: rsig.clone(),
            wsig: wsig.clone(),
        }
    }

    /// Restore both mirrors to the snapshot (the old `clone_from` pair).
    pub fn restore(&self, rsig: &mut Sig, wsig: &mut Sig) {
        rsig.clone_from(&self.rsig);
        wsig.clone_from(&self.wsig);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> SigSpec {
        SigSpec::PAPER
    }

    /// Drive a SigPair-shaped add through the journal, the way the executors do.
    fn journaled_add(j: &mut SigJournal, sig: &mut Sig, slot: SigSlot, addr: u32) {
        let (w, m) = sig.spec().slot_of(addr);
        let old = sig.word(w);
        if old & m == 0 {
            j.note(slot, w, old);
            sig.add_slot(w, m);
        }
    }

    #[test]
    fn rollback_restores_segment_entry_state() {
        let mut r = Sig::new(spec());
        let mut w = Sig::new(spec());
        r.add(10);
        w.add(20);
        let r0 = r.clone();
        let w0 = w.clone();

        let mut j = SigJournal::new();
        j.begin(spec());
        for a in 0..50u32 {
            journaled_add(&mut j, &mut r, SigSlot::Read, 1000 + a);
            journaled_add(&mut j, &mut w, SigSlot::Write, 2000 + a);
        }
        assert!(!j.is_empty());
        j.rollback(&mut r, &mut w);
        assert_eq!(r, r0);
        assert_eq!(w, w0);
        assert!(j.is_empty());
    }

    #[test]
    fn discard_keeps_new_bits() {
        let mut r = Sig::new(spec());
        let mut w = Sig::new(spec());
        let mut j = SigJournal::new();
        j.begin(spec());
        journaled_add(&mut j, &mut r, SigSlot::Read, 7);
        j.discard();
        assert!(r.contains(7));
        assert!(j.is_empty());
        // The next segment can roll back without resurrecting old entries.
        j.begin(spec());
        journaled_add(&mut j, &mut w, SigSlot::Write, 8);
        j.rollback(&mut r, &mut w);
        assert!(r.contains(7), "committed segment survives later rollbacks");
        assert!(w.is_empty());
    }

    #[test]
    fn first_old_value_wins() {
        let mut r = Sig::new(spec());
        let mut w = Sig::new(spec());
        let mut j = SigJournal::new();
        j.begin(spec());
        // Two adds landing in the same word: only the first old value matters.
        let (word, _) = spec().slot_of(3);
        let before = r.word(word);
        journaled_add(&mut j, &mut r, SigSlot::Read, 3);
        // Force a second bit into the same word if possible; note() must dedup.
        j.note(SigSlot::Read, word, 0xDEAD); // wrong old value, must be ignored
        j.rollback(&mut r, &mut w);
        assert_eq!(r.word(word), before);
    }

    #[test]
    fn storage_reused_across_segments() {
        let mut r = Sig::new(spec());
        let mut w = Sig::new(spec());
        let mut j = SigJournal::new();
        for round in 0..10 {
            j.begin(spec());
            for a in 0..32u32 {
                journaled_add(&mut j, &mut r, SigSlot::Read, round * 100 + a);
            }
            j.rollback(&mut r, &mut w);
        }
        assert!(r.is_empty());
        let cap = j.entries.capacity();
        j.begin(spec());
        for a in 0..32u32 {
            journaled_add(&mut j, &mut r, SigSlot::Read, a);
        }
        assert_eq!(j.entries.capacity(), cap, "no growth after warm-up");
        j.discard();
    }

    #[test]
    fn matches_clone_reference_on_folded_geometry() {
        // 128-word geometry: exercises the exact (unfolded) dirty bitmaps.
        let big = SigSpec::new(8192);
        let mut r = Sig::new(big);
        let mut w = Sig::new(big);
        for a in (0..10_000).step_by(37) {
            r.add(a);
        }
        let saved = CloneSaved::save(&r, &w);
        let mut j = SigJournal::new();
        j.begin(big);
        for a in (0..60_000).step_by(11) {
            journaled_add(&mut j, &mut r, SigSlot::Read, a);
            journaled_add(&mut j, &mut w, SigSlot::Write, a + 1);
        }
        let mut r_ref = r.clone();
        let mut w_ref = w.clone();
        j.rollback(&mut r, &mut w);
        saved.restore(&mut r_ref, &mut w_ref);
        assert_eq!(r, r_ref);
        assert_eq!(w, w_ref);
    }
}
