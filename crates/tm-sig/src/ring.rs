//! The global ring: a circular buffer of committed write signatures ordered by
//! commit timestamp, used to validate in-flight transactions against transactions
//! that committed after they started (RingSTM-style; §5.1 "global-ring").
//!
//! Two publish paths exist because Part-HTM commits writers from two worlds:
//!
//! * **Hardware** ([`Ring::publish_tx`]): the fast path increments the timestamp and
//!   stores its write signature into the ring *inside* its hardware transaction
//!   (Fig. 1 lines 9–11); HTM conflict detection on the timestamp line serialises
//!   concurrent hardware publishers.
//! * **Software** ([`Ring::publish_software`]): the partitioned path's global commit
//!   must bump the timestamp and publish atomically *outside* any hardware
//!   transaction (Fig. 1 lines 45–47, the paper's "atomic" block). We implement the
//!   atomic block with a ring lock that hardware publishers subscribe to: acquiring
//!   it (a non-transactional CAS) dooms every hardware transaction that already read
//!   the lock word — strong atomicity makes the two worlds mutually exclusive.
//!
//! # The summary fast path
//!
//! [`Ring::validate_nt`] walks every entry between the validator's start time and
//! the current timestamp — O(ts-delta × words) strongly-atomic heap reads, the worst
//! scaling term of the software framework. [`RingSummary`] collapses the common
//! no-conflict case to O(live words): it maintains, in *host* memory (deliberately
//! outside the simulated heap, so summary reads never doom in-flight hardware
//! publishers), the OR of every signature published since the summary's last reset.
//! A validator whose read signature is disjoint from the summary — checked under the
//! publish-counter/generation fence of [`RingSummary::try_fast_pass`] — has nothing
//! to conflict with and skips the walk entirely; any doubt falls back to the precise
//! walk. False positives only cost the fallback; false negatives cannot happen (the
//! correctness argument lives with `try_fast_pass` and in `docs/hot-path.md`).
//! A summary pass is valid even across ring rollover: the OR covers every publish
//! since the reset, whether or not its slot has been overwritten.

use std::sync::atomic::{AtomicU32, AtomicU64, Ordering::SeqCst};

use crate::epoch::EpochRegistry;
use crate::heap_sig::HeapSig;
use crate::kernels::{self, BankLine};
use crate::sig::Sig;
use crate::spec::SigSpec;
use htm_sim::abort::TxResult;
use htm_sim::{Addr, HeapBuilder, HtmThread, HtmTx, WORDS_PER_LINE};

/// Explicit-abort payload used when a hardware publisher finds the ring lock held.
pub const XABORT_RING_LOCKED: u8 = 0xA1;

/// Flag bit in an entry's mask word marking the *compact* layout: the entry's
/// signature words live in the spare words of the mask's own cache line (slots
/// `+1..+7`, in ascending word-index order) instead of the full-geometry array
/// at `+8..`. Word-range-restricted publishes (the sharded ring's per-shard
/// entries) use it so the whole entry is a single cache-line store. Only ever
/// set when the geometry has fewer than 64 words, so the bit cannot collide
/// with a real word index.
const ENTRY_COMPACT: u64 = 1 << 63;

/// Validation failure against the ring.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RingValidationError {
    /// A transaction that committed after `start_time` wrote something this
    /// transaction read.
    Invalid,
    /// The ring wrapped past the validation window; entries needed for validation
    /// were overwritten (Fig. 1 lines 39–40: "abort at ring rollover").
    Rollover,
}

/// The global ring resident in the simulated heap.
#[derive(Clone, Copy, Debug)]
pub struct Ring {
    lock: Addr,
    timestamp: Addr,
    entries: Addr,
    size: u64,
    spec: SigSpec,
}

impl Ring {
    /// Words per ring entry: one line holding the non-zero-word mask, then the
    /// signature words. Entries whose mask bit is clear are never read, so stale
    /// slot content from earlier laps is harmless and publishers only store the
    /// words they actually use.
    fn entry_words(spec: SigSpec) -> u32 {
        8 + spec.words()
    }

    /// Allocate a ring with `size` entries of geometry `spec`. The lock and the
    /// timestamp each get their own cache line so that subscribing one does not
    /// false-conflict with bumps of the other.
    pub fn alloc(b: &mut HeapBuilder, size: usize, spec: SigSpec) -> Self {
        assert!(size.is_power_of_two(), "ring size must be a power of two");
        assert!(spec.words() <= 64, "entry mask is a single word");
        let lock = b.alloc_lines(1);
        let timestamp = b.alloc_lines(1);
        let entries = b.alloc_aligned(size * Self::entry_words(spec) as usize);
        Self {
            lock,
            timestamp,
            entries,
            size: size as u64,
            spec,
        }
    }

    /// Number of entries.
    pub fn size(&self) -> u64 {
        self.size
    }

    /// Signature geometry.
    pub fn spec(&self) -> SigSpec {
        self.spec
    }

    /// Heap address of the ring lock word.
    pub fn lock_addr(&self) -> Addr {
        self.lock
    }

    /// Heap address of the global timestamp word.
    pub fn timestamp_addr(&self) -> Addr {
        self.timestamp
    }

    /// Heap address of entry `ts`'s non-zero-word mask.
    fn entry_mask_addr(&self, ts: u64) -> Addr {
        let idx = (ts % self.size) as u32;
        self.entries + idx * Self::entry_words(self.spec)
    }

    /// The signature words of the entry for the commit with timestamp `ts`
    /// (full layout only — compact entries keep their words next to the mask;
    /// see the `ENTRY_COMPACT` flag bit).
    pub fn entry(&self, ts: u64) -> HeapSig {
        HeapSig::at(self.entry_mask_addr(ts) + 8, self.spec)
    }

    /// Whether a publish restricted to `word_mask` with live words `stored_mask`
    /// can use the compact single-line entry layout: the restriction must be
    /// real (full-geometry entries stay in the full layout so
    /// [`Ring::entry`] snapshots keep working), the flag bit must be free
    /// (geometry under 64 words), the entry base must be line-aligned, and the
    /// words must fit the line's spare slots.
    fn entry_is_compact(&self, word_mask: u64, stored_mask: u64) -> bool {
        word_mask != u64::MAX
            && self.spec.words() < 64
            && Self::entry_words(self.spec).is_multiple_of(WORDS_PER_LINE as u32)
            && (stored_mask.count_ones() as usize) < WORDS_PER_LINE
    }

    /// Non-transactional intersection of ring entry `ts` with `sig`, honouring the
    /// entry's non-zero-word mask (words outside the mask hold stale content from an
    /// earlier lap and are never read) and `sig`'s own mask (only its live words can
    /// intersect anything).
    pub fn entry_intersects_nt(&self, th: &HtmThread<'_>, ts: u64, sig: &Sig) -> bool {
        let base = self.entry_mask_addr(ts);
        let mword = th.nt_read(base);
        // Both layouts gather the overlapping entry words and `sig` words into
        // stack buffers (the mask pretests keep the gather to the handful of
        // words both sides have live — the same heap-read set as before), then
        // settle the conflict with one unrolled intersect-any kernel call.
        let mut ewords = [0u64; 64];
        let mut swords = [0u64; 64];
        let mut n = 0usize;
        if self.spec.words() < 64 && mword & ENTRY_COMPACT != 0 {
            // Compact layout: word `i` sits at slot `rank of i in the stored
            // mask` right after the mask word (writers store in ascending
            // word-index order).
            let stored = mword & !ENTRY_COMPACT;
            let mut overlap = stored & sig.nonzero_mask();
            while overlap != 0 {
                let i = overlap.trailing_zeros();
                let slot = (stored & ((1u64 << i) - 1)).count_ones();
                ewords[n] = th.nt_read(base + 1 + slot);
                swords[n] = sig.word(i);
                n += 1;
                overlap &= overlap - 1;
            }
            return kernels::intersect_any(&ewords[..n], &swords[..n]);
        }
        if mword & sig.nonzero_mask() == 0 {
            return false;
        }
        let entry = self.entry(ts);
        for (i, w) in sig.nonzero_words() {
            if mword & (1 << (i % 64)) != 0 {
                ewords[n] = th.nt_read(entry.word_addr(i));
                swords[n] = w;
                n += 1;
                if n == 64 {
                    // Full buffers (folded geometries can overlap on > 64
                    // words): settle this batch before gathering more.
                    if kernels::intersect_any(&ewords, &swords) {
                        return true;
                    }
                    n = 0;
                }
            }
        }
        kernels::intersect_any(&ewords[..n], &swords[..n])
    }

    /// Read the global timestamp non-transactionally (strongly atomic).
    pub fn timestamp_nt(&self, th: &HtmThread<'_>) -> u64 {
        th.nt_read(self.timestamp)
    }

    /// Read the global timestamp inside a hardware transaction — this *subscribes*
    /// the transaction to the timestamp line, so any later commit (hardware bump or
    /// software store) dooms it. Part-HTM-O's sub-HTM begin uses this (Fig. 2
    /// lines 23–24).
    pub fn timestamp_tx(&self, tx: &mut HtmTx<'_, '_>) -> TxResult<u64> {
        tx.read(self.timestamp)
    }

    /// Hardware publish (fast path commit, Fig. 1 lines 9–11): subscribe the ring
    /// lock (explicitly aborting if a software committer holds it), bump the
    /// timestamp and store `write_sig` into the new entry — all inside `tx`, hence
    /// atomic with the transaction's own commit. The signature is supplied as its
    /// software value (the caller's mirror tracks the heap copy exactly), so the
    /// publish is write-only and visits only the live words. Returns the new
    /// timestamp.
    pub fn publish_tx(&self, tx: &mut HtmTx<'_, '_>, write_sig: &Sig) -> TxResult<u64> {
        self.publish_tx_masked(tx, write_sig, u64::MAX)
    }

    /// [`Ring::publish_tx`] restricted to the words selected by `word_mask` (bit
    /// `i` set ⇔ word `i` is stored): only `write_sig`'s non-zero words inside the
    /// mask are written and the entry mask records exactly that subset. The
    /// sharded ring ([`crate::ShardedRing`]) uses this so each shard's entries
    /// carry only the words of the shard's own word range.
    pub fn publish_tx_masked(
        &self,
        tx: &mut HtmTx<'_, '_>,
        write_sig: &Sig,
        word_mask: u64,
    ) -> TxResult<u64> {
        if tx.read(self.lock)? != 0 {
            return Err(tx.xabort(XABORT_RING_LOCKED));
        }
        let ts = tx.read(self.timestamp)? + 1;
        let base = self.entry_mask_addr(ts);
        let mask = write_sig.nonzero_mask() & word_mask;
        if self.entry_is_compact(word_mask, mask) {
            // Compact layout: the whole entry fits the mask word's line, so the
            // transaction's entry footprint is a single cache line.
            let mut slot = 1;
            for (i, w) in write_sig.nonzero_words() {
                if word_mask & (1 << i) != 0 {
                    tx.write(base + slot, w)?;
                    slot += 1;
                }
            }
            tx.write(base, mask | ENTRY_COMPACT)?;
        } else {
            let entry = self.entry(ts);
            for (i, w) in write_sig.nonzero_words() {
                if word_mask & (1 << i) != 0 {
                    tx.write(entry.word_addr(i), w)?;
                }
            }
            tx.write(base, mask)?;
        }
        tx.write(self.timestamp, ts)?;
        Ok(ts)
    }

    /// [`Ring::publish_tx`] plus summary accounting: announces the publish to
    /// `summary` at the point of no return (the last body step before commit), so
    /// validators running concurrently with this transaction's commit cannot take
    /// the fast path past it. The *caller* must finish the hand-shake after the
    /// hardware transaction resolves: [`RingSummary::complete_publish`] with the
    /// same signature on commit, [`RingSummary::cancel_publish`] on abort.
    pub fn publish_tx_summarized(
        &self,
        tx: &mut HtmTx<'_, '_>,
        write_sig: &Sig,
        summary: &RingSummary,
    ) -> TxResult<u64> {
        let ts = self.publish_tx(tx, write_sig)?;
        // Announce *before* the timestamp store can become visible (it publishes at
        // commit, which is after this body step by construction).
        summary.begin_publish();
        Ok(ts)
    }

    /// Software publish (partitioned path global commit, Fig. 1 lines 45–47):
    /// acquire the ring lock — the CAS dooms hardware publishers that subscribed the
    /// lock word — then write the entry, then bump the timestamp (entry-before-bump
    /// so validators that read timestamp `ts` always see complete entries `<= ts`).
    /// Returns the new timestamp.
    pub fn publish_software(&self, th: &HtmThread<'_>, sig: &Sig) -> u64 {
        while th.nt_cas(self.lock, 0, 1).is_err() {
            htm_sim::vclock::yield_now();
        }
        let ts = th.nt_read(self.timestamp) + 1;
        self.write_entry_nt(th, ts, sig);
        th.nt_write(self.timestamp, ts);
        th.nt_write(self.lock, 0);
        ts
    }

    /// [`Ring::publish_software`] plus the full summary hand-shake: the publish is
    /// announced before the timestamp bump makes it visible and completed right
    /// after (a software committer cannot abort past this point, so no cancel path
    /// exists here).
    pub fn publish_software_summarized(
        &self,
        th: &HtmThread<'_>,
        sig: &Sig,
        summary: &RingSummary,
    ) -> u64 {
        while th.nt_cas(self.lock, 0, 1).is_err() {
            htm_sim::vclock::yield_now();
        }
        let ts = th.nt_read(self.timestamp) + 1;
        self.write_entry_nt(th, ts, sig);
        summary.begin_publish();
        th.nt_write(self.timestamp, ts);
        th.nt_write(self.lock, 0);
        summary.complete_publish(sig);
        ts
    }

    /// Write entry `ts`'s signature words and mask non-transactionally, for software
    /// committers that manage the ring lock and timestamp themselves (RingSTM's
    /// writer commit). The caller must hold the ring lock.
    pub fn write_entry_nt(&self, th: &HtmThread<'_>, ts: u64, sig: &Sig) {
        self.write_entry_masked_nt(th, ts, sig, u64::MAX)
    }

    /// [`Ring::write_entry_nt`] restricted to the words selected by `word_mask`:
    /// the entry stores only `sig`'s non-zero words inside the mask and its mask
    /// word records exactly that subset. Used by the sharded ring's software
    /// publish, where each shard's entry carries only the shard's own word range.
    /// The caller must hold the ring lock.
    pub fn write_entry_masked_nt(&self, th: &HtmThread<'_>, ts: u64, sig: &Sig, word_mask: u64) {
        let base = self.entry_mask_addr(ts);
        let mask = sig.nonzero_mask() & word_mask;
        if self.entry_is_compact(word_mask, mask) {
            // Compact layout: mask and words share one line, published as a
            // single strongly-atomic cache-line store.
            let mut writes = [(0 as Addr, 0u64); WORDS_PER_LINE];
            writes[0] = (base, mask | ENTRY_COMPACT);
            let mut n = 1;
            for (i, w) in sig.nonzero_words() {
                if word_mask & (1 << i) != 0 {
                    writes[n] = (base + n as Addr, w);
                    n += 1;
                }
            }
            th.nt_write_line(&writes[..n]);
            return;
        }
        let entry = self.entry(ts);
        for (i, w) in sig.nonzero_words() {
            if word_mask & (1 << i) != 0 {
                th.nt_write(entry.word_addr(i), w);
            }
        }
        th.nt_write(base, mask);
    }

    /// Validate `read_sig` against every commit later than `start_time` (Fig. 1
    /// lines 34–41). On success returns the new start time (the timestamp covered by
    /// this validation), letting the caller advance and avoid re-validating.
    pub fn validate_nt(
        &self,
        th: &HtmThread<'_>,
        read_sig: &Sig,
        start_time: u64,
    ) -> Result<u64, RingValidationError> {
        let ts = self.timestamp_nt(th);
        if ts == start_time {
            return Ok(ts);
        }
        let mut i = ts;
        while i > start_time {
            if self.entry_intersects_nt(th, i, read_sig) {
                return Err(RingValidationError::Invalid);
            }
            i -= 1;
        }
        // Rollover check with a re-read: if the window wrapped while we were
        // validating, some inspected entries may have been overwritten by newer
        // commits and the loop above cannot be trusted.
        if self.timestamp_nt(th) > start_time + self.size {
            return Err(RingValidationError::Rollover);
        }
        Ok(ts)
    }

    /// [`Ring::validate_nt`] behind the summary fast path: if `read_sig` provably
    /// misses everything published since `start_time`, skip the per-entry walk.
    /// The second return value reports whether the fast path decided the call
    /// (true) or the precise walk ran (false) — the executors feed it into their
    /// statistics.
    pub fn validate_summarized_nt(
        &self,
        th: &HtmThread<'_>,
        summary: &RingSummary,
        read_sig: &Sig,
        start_time: u64,
    ) -> (Result<u64, RingValidationError>, bool) {
        if let Some(ts) = summary.try_fast_pass(read_sig, start_time, || self.timestamp_nt(th)) {
            return (Ok(ts), true);
        }
        (self.validate_nt(th, read_sig, start_time), false)
    }

    /// Reset the summary when it has grown dense enough to stop filtering (see
    /// [`RingSummary::wants_reset`]). At most one resetter runs at a time; the
    /// summary's reset protocol — generation seqlock or epoch banks, per its
    /// [`SummaryTuning`] — keeps concurrent publishers and validators correct
    /// (the interleaving arguments are spelled out in `docs/hot-path.md` and
    /// `docs/ring-sharding.md`). Returns true when a reset was performed.
    pub fn maybe_reset_summary(&self, th: &HtmThread<'_>, summary: &RingSummary) -> bool {
        summary.maybe_reset_with(|| self.timestamp_nt(th), || {}, |_| {}) == ResetAttempt::Done
    }
}

/// Legacy density threshold: reset once more than a third of the summary's bits
/// are set (a summary this dense intersects almost every read signature, so the
/// fast path stops paying for itself). [`SummaryTuning::default`] starts here.
const SUMMARY_DENSITY_NUM: u32 = 1;
const SUMMARY_DENSITY_DEN: u32 = 3;
/// Legacy publishes between density checks (keeps the density popcount off the
/// common path). [`SummaryTuning::default`] starts here.
const SUMMARY_CHECK_INTERVAL: u64 = 256;

/// Controller resolution: the adaptive density threshold moves in steps of
/// 1/16 of full density (the initial num/den ratio is represented exactly on
/// this grid, so an untouched controller reproduces the configured threshold
/// bit-for-bit).
const CTRL_SCALE: u32 = 16;
/// Misses a cause must accumulate within one check interval before the
/// controller reacts to it at all (noise floor).
const CTRL_MIN_EVIDENCE: u64 = 16;
/// How dominant one miss cause must be over the other (×) before the
/// controller moves.
const CTRL_DOMINANCE: u64 = 4;
/// Clamp on the adaptive check interval: never below (popcount every 32
/// publishes is already aggressive) and never above (a summary must not go
/// un-checked forever).
const CTRL_MIN_INTERVAL: u64 = 32;
const CTRL_MAX_INTERVAL: u64 = 4096;

/// Which reset protocol a [`RingSummary`] runs (see `docs/ring-sharding.md`,
/// "Epoch-based resets").
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ResetMode {
    /// PR 2's generation seqlock: one bank of words, cleared in place while the
    /// generation is odd; every validator and publisher stalls or falls back
    /// for the duration of the clear. Kept as the differential oracle.
    Seqlock,
    /// Epoch banks: two banks of words; a reset clears the *retired* bank off
    /// to the side and then flips the epoch, so validators keep fast-passing on
    /// the current bank throughout and publishers never spin. Resets defer
    /// (rather than block) while a validator is pinned to an older epoch.
    Epoch,
}

/// Construction-time tuning of a [`RingSummary`]: reset protocol plus the
/// *initial* values of the adaptive density controller. The legacy constants
/// (`1/3` density, 256-publish check interval) are the defaults, so
/// `SummaryTuning::default()` with [`ResetMode::Seqlock`] pins PR 2/3
/// behaviour exactly — the `ring_shards: 1` oracle configuration relies on
/// this.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SummaryTuning {
    /// Reset protocol.
    pub mode: ResetMode,
    /// Density threshold numerator: reset when more than `num/den` of the live
    /// bits are set. Controller initial value (the controller only moves it in
    /// [`ResetMode::Epoch`]).
    pub density_num: u32,
    /// Density threshold denominator.
    pub density_den: u32,
    /// Publishes between density checks. Controller initial value.
    pub check_interval: u64,
}

impl Default for SummaryTuning {
    fn default() -> Self {
        Self {
            mode: ResetMode::Seqlock,
            density_num: SUMMARY_DENSITY_NUM,
            density_den: SUMMARY_DENSITY_DEN,
            check_interval: SUMMARY_CHECK_INTERVAL,
        }
    }
}

impl SummaryTuning {
    /// The default tuning running the epoch-bank protocol.
    pub fn epochs() -> Self {
        Self {
            mode: ResetMode::Epoch,
            ..Self::default()
        }
    }
}

/// Why a summary fast pass declined to decide a validation (the precise walk
/// runs instead). The adaptive density controller keys off the split: dirty
/// misses are cured by resetting more eagerly, in-flight misses are not —
/// resetting *more* only produces more of them.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FastMiss {
    /// The read signature intersected the summary words: the summary is too
    /// dense (or a genuine conflict exists — the walk decides which).
    Dirty,
    /// Transient instability a denser-summary reset would not have prevented:
    /// a publisher was announced but not yet folded, the generation/epoch moved
    /// mid-probe, or the validator's window predates the last reset.
    Inflight,
}

/// Outcome of a [`RingSummary::maybe_reset_with`] attempt.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ResetAttempt {
    /// No reset due: pacing interval not elapsed, density below threshold, or
    /// another resetter holds the guard.
    Idle,
    /// Epoch mode only: the summary is due for a reset but a validator is still
    /// pinned to an older epoch; the reset is deferred to a later committer
    /// instead of invalidating the reader mid-probe (grace-period rule).
    Deferred,
    /// A reset was performed.
    Done,
}

/// The global summary signature: host-side companion to a [`Ring`] (the ring itself
/// is a plain-old-data heap handle; the summary holds atomics and therefore lives
/// in the runtime). See the module docs for the protocol overview.
///
/// Soundness hinges on three rules, in concert:
///
/// 1. **Announce-then-bump**: a publisher increments `started` *before* its
///    timestamp store can become visible, and increments `completed` only after its
///    bits are in the summary (or the publish aborted). A validator reads
///    `completed` first and `started` last and requires them equal — any publish it
///    could be missing bits from is then provably either fully summarised or not
///    yet visible in the timestamp it validated against.
/// 2. **Stability across the probe**: publishers OR their bits under a
///    generation/epoch re-check (retrying into the current bank if a reset
///    overlapped), and validators require the generation (seqlock mode: stable
///    and even; epoch mode: stable) across their whole read sequence. In epoch
///    mode the final re-check additionally catches publishers that folded into
///    the *new* bank after a flip the validator did not see.
/// 3. **Reset timestamp read after the clear**: bits a clear may have dropped
///    belong to publishes whose timestamps were visible before `reset_ts` was
///    read, so requiring `start_time >= reset_ts` (of the bank being probed) on
///    the fast path makes the dropped bits irrelevant (those publishes are
///    before the validator's window).
///
/// In [`ResetMode::Epoch`] the summary additionally keeps an [`EpochRegistry`]:
/// validators entering through the `*_at` probes pin the epoch they read, and
/// [`RingSummary::maybe_reset_with`] defers (never blocks) while any pin is
/// older than the current epoch — see `docs/ring-sharding.md` for the
/// grace-period argument.
#[derive(Debug)]
pub struct RingSummary {
    /// OR of every signature published since the last reset, stored as whole
    /// cache lines ([`BankLine`], 8 words per 64-byte line) so each bank
    /// starts on a line boundary and two banks never share a line — a
    /// publisher folding into the current bank cannot false-share with the
    /// reset clearing the retired one. Seqlock mode: one bank of
    /// `lines_per_bank` lines, cleared in place. Epoch mode: two banks back to
    /// back (bank `b` word `i` at line `b * lines_per_bank + i / 8`, lane
    /// `i % 8`); publishers fold into bank `gen & 1`, resets clear the retired
    /// bank off to the side.
    lines: Box<[BankLine]>,
    /// Whole cache lines per bank: `spec.words() / 8`, rounded up.
    lines_per_bank: usize,
    /// Seqlock mode: generation, odd while a reset is clearing the words.
    /// Epoch mode: the epoch counter; the current bank is `gen & 1`.
    gen: AtomicU64,
    /// Ring timestamp observed just after the last clear of each bank;
    /// fast-path validators must have `start_time >= reset_ts[bank]` for the
    /// bank they probe. Seqlock mode uses slot 0 only.
    reset_ts: [AtomicU64; 2],
    /// Publishes announced (monotone; never decremented).
    started: AtomicU64,
    /// Publishes completed or cancelled (monotone; never decremented).
    completed: AtomicU64,
    /// Completed publishes since the last reset (density-check pacing).
    since_reset: AtomicU64,
    /// CAS guard: at most one resetter at a time.
    resetting: AtomicU64,
    /// Adaptive density threshold numerator on the `ctrl_den` grid (initially
    /// `density_num * CTRL_SCALE`, i.e. exactly the configured ratio).
    ctrl_num: AtomicU32,
    /// Fixed denominator of the adaptive threshold: `density_den * CTRL_SCALE`.
    ctrl_den: u32,
    /// Adaptive publishes-between-density-checks.
    ctrl_interval: AtomicU64,
    /// Fast-pass misses since the last controller step whose cause a denser
    /// reset would cure ([`FastMiss::Dirty`]).
    miss_dirty: AtomicU64,
    /// Fast-pass misses a reset would not have prevented
    /// ([`FastMiss::Inflight`]).
    miss_inflight: AtomicU64,
    /// Per-thread epoch pins (consulted in epoch mode only).
    pins: EpochRegistry,
    /// Reset protocol.
    mode: ResetMode,
    /// Highest commit timestamp whose publish has *completed its fold* into
    /// `words` (recorded by [`RingSummary::complete_publish_masked`] just
    /// before it bumps `completed`; monotone). A validator whose clean probe
    /// passes may advance its window here without reading the ring timestamp:
    /// every publish at or below this value has its bits in the words the
    /// probe just read. May lag the ring timestamp while folds are in flight —
    /// lagging is safe, it only advances windows less.
    folded_ts: AtomicU64,
    /// Bits the density check measures against: the full geometry for a whole-ring
    /// summary, or 64 × the covered word count for a shard-masked summary.
    live_bits: u32,
    spec: SigSpec,
}

impl RingSummary {
    /// An empty summary for signatures of geometry `spec` (legacy seqlock
    /// tuning).
    pub fn new(spec: SigSpec) -> Self {
        Self::with_tuning(spec, SummaryTuning::default())
    }

    /// An empty summary with explicit [`SummaryTuning`].
    pub fn with_tuning(spec: SigSpec, tuning: SummaryTuning) -> Self {
        Self::build(spec, spec.bits(), tuning)
    }

    /// An empty summary whose density accounting covers only the words selected by
    /// `word_mask` (a shard of the sharded ring only ever folds in its own word
    /// range, so measuring density against the full geometry would make
    /// [`RingSummary::wants_reset`] unreachable). Legacy seqlock tuning.
    pub fn new_masked(spec: SigSpec, word_mask: u64) -> Self {
        Self::new_masked_tuned(spec, word_mask, SummaryTuning::default())
    }

    /// [`RingSummary::new_masked`] with explicit [`SummaryTuning`].
    pub fn new_masked_tuned(spec: SigSpec, word_mask: u64, tuning: SummaryTuning) -> Self {
        let covered = (0..spec.words().min(64))
            .filter(|i| word_mask & (1 << i) != 0)
            .count() as u32;
        Self::build(spec, covered * 64, tuning)
    }

    fn build(spec: SigSpec, live_bits: u32, tuning: SummaryTuning) -> Self {
        assert!(tuning.density_den > 0, "density threshold needs a denominator");
        let banks = match tuning.mode {
            ResetMode::Seqlock => 1,
            ResetMode::Epoch => 2,
        };
        let lines_per_bank = (spec.words() as usize).div_ceil(WORDS_PER_LINE);
        Self {
            lines: (0..banks * lines_per_bank)
                .map(|_| BankLine::default())
                .collect(),
            lines_per_bank,
            gen: AtomicU64::new(0),
            reset_ts: [AtomicU64::new(0), AtomicU64::new(0)],
            started: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            since_reset: AtomicU64::new(0),
            resetting: AtomicU64::new(0),
            ctrl_num: AtomicU32::new(tuning.density_num * CTRL_SCALE),
            ctrl_den: tuning.density_den * CTRL_SCALE,
            ctrl_interval: AtomicU64::new(tuning.check_interval),
            miss_dirty: AtomicU64::new(0),
            miss_inflight: AtomicU64::new(0),
            pins: EpochRegistry::new(),
            mode: tuning.mode,
            folded_ts: AtomicU64::new(0),
            live_bits,
            spec,
        }
    }

    /// Geometry.
    pub fn spec(&self) -> SigSpec {
        self.spec
    }

    /// Reset protocol this summary runs.
    pub fn mode(&self) -> ResetMode {
        self.mode
    }

    /// Current publishes-between-density-checks (adaptive in epoch mode; fixed
    /// at the configured value in seqlock mode).
    pub fn check_interval(&self) -> u64 {
        self.ctrl_interval.load(SeqCst)
    }

    /// Current density threshold as a `(num, den)` ratio of the live bits.
    pub fn density_threshold(&self) -> (u32, u32) {
        (self.ctrl_num.load(SeqCst), self.ctrl_den)
    }

    /// The bank publishers fold into / validators probe under generation or
    /// epoch `g`.
    #[inline]
    fn bank_of(&self, g: u64) -> usize {
        match self.mode {
            ResetMode::Seqlock => 0,
            ResetMode::Epoch => (g & 1) as usize,
        }
    }

    /// Word `i` of bank `bank`.
    #[inline]
    fn word(&self, bank: usize, i: usize) -> &AtomicU64 {
        &self.bank_lines(bank)[i / WORDS_PER_LINE].0[i % WORDS_PER_LINE]
    }

    /// The whole-line storage of bank `bank` (what the line kernels walk).
    #[inline]
    fn bank_lines(&self, bank: usize) -> &[BankLine] {
        &self.lines[bank * self.lines_per_bank..(bank + 1) * self.lines_per_bank]
    }

    /// Pin `tid` to the current epoch (hazard-pointer handshake: publish the
    /// pin, then confirm the epoch did not move; retry if it did). Returns the
    /// pinned epoch. Long-running readers may hold a pin across several probes
    /// — resets defer rather than invalidate them — but MUST
    /// [`RingSummary::unpin`] promptly or shard resets starve into
    /// [`ResetAttempt::Deferred`] forever. No-op (plain epoch load) in seqlock
    /// mode.
    pub fn pin_epoch(&self, tid: usize) -> u64 {
        loop {
            let e = self.gen.load(SeqCst);
            if self.mode == ResetMode::Seqlock {
                return e;
            }
            self.pins.set(tid, e);
            if self.gen.load(SeqCst) == e {
                return e;
            }
        }
    }

    /// Drop `tid`'s epoch pin.
    pub fn unpin(&self, tid: usize) {
        if self.mode == ResetMode::Epoch {
            self.pins.clear(tid);
        }
    }

    /// The pin registry, exposed so crate-internal tests can plant a stale pin
    /// (simulating a reader caught mid-probe across a flip).
    #[cfg(test)]
    pub(crate) fn pins_for_tests(&self) -> &EpochRegistry {
        &self.pins
    }

    /// Announce a publish whose timestamp is about to become visible. Every
    /// `begin_publish` must be matched by exactly one [`RingSummary::complete_publish`]
    /// or [`RingSummary::cancel_publish`].
    #[inline]
    pub fn begin_publish(&self) {
        self.started.fetch_add(1, SeqCst);
    }

    /// Fold a committed publish's signature into the summary. The generation
    /// re-check makes the OR effectively atomic against resets: if a reset clears
    /// words mid-OR, the loop runs again and re-ORs into the fresh summary.
    pub fn complete_publish(&self, sig: &Sig) {
        self.complete_publish_masked(sig, u64::MAX, 0)
    }

    /// [`RingSummary::complete_publish`] restricted to the words selected by
    /// `word_mask`: only `sig`'s non-zero words inside the mask are folded in. A
    /// shard summary of the sharded ring folds in only its own word range, keeping
    /// each shard's density (and therefore its reset cadence) independent.
    ///
    /// `folded_ts` is the publish's commit timestamp (0 when the caller does not
    /// know it, e.g. the unmasked single-ring paths, which never consult the
    /// watermark). It is recorded strictly *before* `completed` is bumped: the
    /// [`RingSummary::clean_since`] early-out relies on "counters balanced ⇒
    /// the watermark covers every folded publish".
    pub fn complete_publish_masked(&self, sig: &Sig, word_mask: u64, folded_ts: u64) {
        loop {
            let g1 = self.gen.load(SeqCst);
            if self.mode == ResetMode::Seqlock && g1 & 1 != 0 {
                // A reset is clearing the (only) bank in place: wait it out.
                std::hint::spin_loop();
                continue;
            }
            let bank = self.bank_of(g1);
            // The fold kernel ORs `sig`'s non-zero words under `word_mask`
            // into the bank — the same atomic-RMW set as the old per-word
            // loop, four words per branch.
            kernels::fold_or_lines(self.bank_lines(bank), sig.words(), word_mask);
            if self.gen.load(SeqCst) == g1 {
                break;
            }
            // Epoch mode: the epoch flipped mid-fold — re-fold into the new
            // current bank. Bits a straggling iteration left in the retired
            // bank only over-approximate it (false positives, never missed
            // conflicts) and vanish at that bank's next clear.
        }
        self.folded_ts.fetch_max(folded_ts, SeqCst);
        self.since_reset.fetch_add(1, SeqCst);
        self.completed.fetch_add(1, SeqCst);
    }

    /// Retire an announced publish whose hardware transaction aborted (its
    /// timestamp never became visible, so there is nothing to fold in).
    #[inline]
    pub fn cancel_publish(&self) {
        self.completed.fetch_add(1, SeqCst);
    }

    /// Publishes announced against this summary so far (monotone). With
    /// [`RingSummary::completed_publishes`] this exposes the summary's
    /// *occupancy* to admission controllers: per-shard arrival pressure
    /// without touching the protocol's own counters.
    #[inline]
    pub fn started_publishes(&self) -> u64 {
        self.started.load(SeqCst)
    }

    /// Publishes completed or cancelled so far (monotone).
    #[inline]
    pub fn completed_publishes(&self) -> u64 {
        self.completed.load(SeqCst)
    }

    /// Publishes currently in flight (announced, not yet completed or
    /// cancelled): the instantaneous occupancy of this summary's shard. The
    /// two loads are not atomic together, so a racing publish can skew the
    /// snapshot by ±1 per concurrent publisher — fine for an admission
    /// heuristic, never a correctness input.
    #[inline]
    pub fn inflight_publishes(&self) -> u64 {
        let s = self.started.load(SeqCst);
        s.saturating_sub(self.completed.load(SeqCst))
    }

    /// The summary fast path: `Some(ts)` when `read_sig` provably conflicts with
    /// nothing published after `start_time` (with `ts` the timestamp the caller may
    /// advance to), `None` when the precise walk must decide. `read_ts` reads the
    /// ring timestamp; it is taken as a closure because the timestamp lives in the
    /// simulated heap while the summary does not.
    ///
    /// Read order is load-bearing (see the type-level docs): `completed` first,
    /// generation/epoch + reset window, the timestamp, the summary words, then
    /// `started` and the generation/epoch again. Equality of the two counters
    /// proves every publish visible in `ts` had completed before the first read —
    /// and was therefore either in the bank words read afterwards, or dropped by
    /// a reset that the `start_time >= reset_ts` check already accounts for. In
    /// epoch mode the final epoch re-check is what catches the one hole counters
    /// alone leave open: a publish that folded into the *new* bank after a flip
    /// this validator did not observe would balance the counters while its bits
    /// are absent from the old bank being probed — any such publish implies the
    /// epoch moved, which the re-check turns into a fallback.
    pub fn try_fast_pass(
        &self,
        read_sig: &Sig,
        start_time: u64,
        read_ts: impl FnOnce() -> u64,
    ) -> Option<u64> {
        self.fast_pass_impl(None, read_sig, start_time, read_ts).ok()
    }

    /// [`RingSummary::try_fast_pass`] with the caller's thread id, pinning the
    /// probed epoch in the registry for the duration (epoch mode; resets defer
    /// around the pin instead of invalidating the probe) and reporting *why* a
    /// miss missed — the executors feed the cause into `TmStats` and the
    /// adaptive controller consumes the same split.
    pub fn try_fast_pass_at(
        &self,
        tid: usize,
        read_sig: &Sig,
        start_time: u64,
        read_ts: impl FnOnce() -> u64,
    ) -> Result<u64, FastMiss> {
        self.fast_pass_impl(Some(tid), read_sig, start_time, read_ts)
    }

    fn fast_pass_impl(
        &self,
        tid: Option<usize>,
        read_sig: &Sig,
        start_time: u64,
        read_ts: impl FnOnce() -> u64,
    ) -> Result<u64, FastMiss> {
        let res = match self.mode {
            ResetMode::Seqlock => self.fast_pass_seqlock(read_sig, start_time, read_ts),
            ResetMode::Epoch => {
                let e = match tid {
                    Some(t) => self.pin_epoch(t),
                    None => self.gen.load(SeqCst),
                };
                let r = self.fast_pass_epoch(e, read_sig, start_time, read_ts);
                if let Some(t) = tid {
                    self.unpin(t);
                }
                r
            }
        };
        if let Err(cause) = res {
            self.note_miss(cause);
        }
        res
    }

    fn fast_pass_seqlock(
        &self,
        read_sig: &Sig,
        start_time: u64,
        read_ts: impl FnOnce() -> u64,
    ) -> Result<u64, FastMiss> {
        let c1 = self.completed.load(SeqCst);
        let g1 = self.gen.load(SeqCst);
        if g1 & 1 != 0 {
            return Err(FastMiss::Inflight);
        }
        if start_time < self.reset_ts[0].load(SeqCst) {
            return Err(FastMiss::Inflight);
        }
        let ts = read_ts();
        if ts == start_time {
            return Ok(ts); // nothing committed since; same early-out as validate_nt
        }
        if kernels::probe_lines_masked(self.bank_lines(0), read_sig.words(), read_sig.nonzero_mask()) {
            return Err(FastMiss::Dirty);
        }
        if self.started.load(SeqCst) != c1 || self.gen.load(SeqCst) != g1 {
            return Err(FastMiss::Inflight);
        }
        Ok(ts)
    }

    /// Epoch-mode fast pass against the bank of pinned epoch `e`. Unlike the
    /// seqlock flavour there is no "reset in progress" bail-out: a concurrent
    /// reset clears the *retired* bank, not the one this probe reads, so
    /// validators keep deciding at full speed for the whole clear and only a
    /// probe that actually straddles the flip (final `gen != e`) falls back.
    fn fast_pass_epoch(
        &self,
        e: u64,
        read_sig: &Sig,
        start_time: u64,
        read_ts: impl FnOnce() -> u64,
    ) -> Result<u64, FastMiss> {
        let c1 = self.completed.load(SeqCst);
        let bank = (e & 1) as usize;
        if start_time < self.reset_ts[bank].load(SeqCst) {
            return Err(FastMiss::Inflight);
        }
        let ts = read_ts();
        if ts == start_time {
            return Ok(ts);
        }
        if kernels::probe_lines_masked(self.bank_lines(bank), read_sig.words(), read_sig.nonzero_mask()) {
            return Err(FastMiss::Dirty);
        }
        if self.started.load(SeqCst) != c1 || self.gen.load(SeqCst) != e {
            return Err(FastMiss::Inflight);
        }
        Ok(ts)
    }

    /// Record a fast-pass miss for the adaptive controller.
    #[inline]
    fn note_miss(&self, cause: FastMiss) {
        match cause {
            FastMiss::Dirty => self.miss_dirty.fetch_add(1, SeqCst),
            FastMiss::Inflight => self.miss_inflight.fetch_add(1, SeqCst),
        };
    }

    /// The fold watermark: the highest commit timestamp whose publish has
    /// completed its fold into the summary words.
    ///
    /// Safe to use as a begin-time validation window without reading the ring
    /// timestamp: every publish with a commit timestamp at or below the
    /// watermark became visible *before* the watermark reached that value (a
    /// fold runs strictly after the commit that produced its timestamp, and
    /// timestamps are handed out in commit order per shard), so a reader whose
    /// window starts here has already observed all of those publishes' writes.
    /// The watermark may lag the ring timestamp while folds are in flight;
    /// lag only widens the window, which is conservative, never unsound.
    #[inline]
    pub fn folded_ts(&self) -> u64 {
        self.folded_ts.load(SeqCst)
    }

    /// Timestamp-free variant of [`RingSummary::try_fast_pass`]: `Some(adv)`
    /// when `read_sig` provably collides with no entry published after
    /// `start_time`, with `adv` a timestamp the caller may advance its window
    /// to (possibly below `start_time`; take the max).
    ///
    /// Because the ring timestamp is never read, the probe touches only the
    /// host-side summary atomics — no simulated-heap access at all. Two ways
    /// to pass, mirroring the two exits of the fast pass:
    ///
    /// * **Nothing-new early-out** (the common case of a freshly advanced
    ///   window): the fold watermark is `<= start_time` and the counters
    ///   balance. Every *folded* publish then has a timestamp `<= start_time`
    ///   (the watermark is bumped before `completed`, so "balanced counters"
    ///   means the watermark covers all of them — this is why every masked
    ///   completer must pass its timestamp), every announced-but-unfolded one
    ///   trips the counter mismatch, and anything announced after the final
    ///   load is outside the window this probe vouches for. The signature
    ///   words are never read.
    /// * **Bloom probe**: `read_sig` intersects none of the summary words.
    ///   The watermark is loaded *before* the words, so every publish at or
    ///   below it folded its bits into what the probe then read — advancing
    ///   to it is strictly weaker than the advance
    ///   [`RingSummary::try_fast_pass`] proves sound from the real timestamp.
    ///
    /// In both cases a reset inside the window is rejected by the
    /// `start_time >= reset_ts` check, exactly as in the fast pass.
    pub fn clean_since(&self, read_sig: &Sig, start_time: u64) -> Option<u64> {
        self.clean_since_impl(None, read_sig, start_time).ok()
    }

    /// [`RingSummary::clean_since`] with the caller's thread id (epoch pin held
    /// across the probe) and the miss cause on failure — the timestamp-free
    /// analogue of [`RingSummary::try_fast_pass_at`].
    pub fn clean_since_at(
        &self,
        tid: usize,
        read_sig: &Sig,
        start_time: u64,
    ) -> Result<u64, FastMiss> {
        self.clean_since_impl(Some(tid), read_sig, start_time)
    }

    fn clean_since_impl(
        &self,
        tid: Option<usize>,
        read_sig: &Sig,
        start_time: u64,
    ) -> Result<u64, FastMiss> {
        let res = match self.mode {
            ResetMode::Seqlock => self.clean_since_seqlock(read_sig, start_time),
            ResetMode::Epoch => {
                let e = match tid {
                    Some(t) => self.pin_epoch(t),
                    None => self.gen.load(SeqCst),
                };
                let r = self.clean_since_epoch(e, read_sig, start_time);
                if let Some(t) = tid {
                    self.unpin(t);
                }
                r
            }
        };
        if let Err(cause) = res {
            self.note_miss(cause);
        }
        res
    }

    fn clean_since_seqlock(&self, read_sig: &Sig, start_time: u64) -> Result<u64, FastMiss> {
        let c1 = self.completed.load(SeqCst);
        let g1 = self.gen.load(SeqCst);
        if g1 & 1 != 0 {
            return Err(FastMiss::Inflight);
        }
        if start_time < self.reset_ts[0].load(SeqCst) {
            return Err(FastMiss::Inflight);
        }
        let adv = self.folded_ts.load(SeqCst);
        if adv <= start_time {
            if self.started.load(SeqCst) == c1 && self.gen.load(SeqCst) == g1 {
                return Ok(start_time);
            }
            return Err(FastMiss::Inflight);
        }
        if kernels::probe_lines_masked(self.bank_lines(0), read_sig.words(), read_sig.nonzero_mask()) {
            return Err(FastMiss::Dirty);
        }
        if self.started.load(SeqCst) != c1 || self.gen.load(SeqCst) != g1 {
            return Err(FastMiss::Inflight);
        }
        Ok(adv)
    }

    /// Epoch-mode clean probe against pinned epoch `e`'s bank; same structure
    /// as [`RingSummary::fast_pass_epoch`] with the fold watermark in place of
    /// the ring timestamp.
    fn clean_since_epoch(&self, e: u64, read_sig: &Sig, start_time: u64) -> Result<u64, FastMiss> {
        let c1 = self.completed.load(SeqCst);
        let bank = (e & 1) as usize;
        if start_time < self.reset_ts[bank].load(SeqCst) {
            return Err(FastMiss::Inflight);
        }
        let adv = self.folded_ts.load(SeqCst);
        if adv <= start_time {
            if self.started.load(SeqCst) == c1 && self.gen.load(SeqCst) == e {
                return Ok(start_time);
            }
            return Err(FastMiss::Inflight);
        }
        if kernels::probe_lines_masked(self.bank_lines(bank), read_sig.words(), read_sig.nonzero_mask()) {
            return Err(FastMiss::Dirty);
        }
        if self.started.load(SeqCst) != c1 || self.gen.load(SeqCst) != e {
            return Err(FastMiss::Inflight);
        }
        Ok(adv)
    }

    /// True when the summary is due for a density check and more than the
    /// controller's current threshold of its live bits are set (the full
    /// geometry, or the shard's word range for a summary built with
    /// [`RingSummary::new_masked`]). A summary that dense intersects almost
    /// every read signature, so the fast path stops paying for itself.
    pub fn wants_reset(&self) -> bool {
        self.since_reset.load(SeqCst) >= self.ctrl_interval.load(SeqCst)
            && self.density_exceeded()
    }

    /// Popcount of the current bank against the adaptive threshold.
    fn density_exceeded(&self) -> bool {
        let bank = self.bank_of(self.gen.load(SeqCst));
        let pop = kernels::popcount_lines(self.bank_lines(bank), self.spec.words() as usize);
        pop > self.live_bits as u64 * self.ctrl_num.load(SeqCst) as u64 / self.ctrl_den as u64
    }

    /// One adaptive-controller step, run under the reset guard at each density
    /// check (epoch mode only): harvest the miss-cause counters accumulated
    /// since the last check and move the threshold/interval toward whichever
    /// regime dominates. Dirty misses mean the filter is saturating — tighten
    /// the threshold and check more often; in-flight misses mean resets are not
    /// the problem (and churning resets *creates* more of them) — relax the
    /// threshold and check less often. Mixed or sparse evidence moves nothing.
    fn controller_step(&self) {
        let dirty = self.miss_dirty.swap(0, SeqCst);
        let inflight = self.miss_inflight.swap(0, SeqCst);
        let num = self.ctrl_num.load(SeqCst);
        let interval = self.ctrl_interval.load(SeqCst);
        // One step = 1/CTRL_SCALE of full density, exactly representable on
        // the ctrl_den grid. Threshold clamps to [1/8, 1/2] of the live bits.
        let step = self.ctrl_den / CTRL_SCALE;
        if dirty >= CTRL_MIN_EVIDENCE && dirty >= CTRL_DOMINANCE * inflight {
            self.ctrl_num
                .store(num.saturating_sub(step).max(self.ctrl_den / 8), SeqCst);
            self.ctrl_interval
                .store((interval / 2).max(CTRL_MIN_INTERVAL), SeqCst);
        } else if inflight >= CTRL_MIN_EVIDENCE && inflight >= CTRL_DOMINANCE * dirty {
            self.ctrl_num.store((num + step).min(self.ctrl_den / 2), SeqCst);
            self.ctrl_interval
                .store((interval * 2).min(CTRL_MAX_INTERVAL), SeqCst);
        }
    }

    /// Attempt a reset: pacing-interval gate, resetter guard, adaptive
    /// controller step (epoch mode), density check, then the mode's reset
    /// protocol. `read_ts` reads the owning ring's timestamp (a closure because
    /// the timestamp lives in the simulated heap while the summary does not).
    /// `pre_clear` runs before any summary bits are dropped and `post_clear`
    /// receives the new reset timestamp after the protocol completes — the
    /// sharded ring threads its group-probe maintenance through them (sentinel
    /// the floor and zero the probe word before the clear, publish the new
    /// floor after); plain-ring callers pass no-ops.
    ///
    /// **Seqlock protocol** (one bank): generation goes odd, the bank clears in
    /// place (validators bail, publishers spin), `reset_ts` is read *after* the
    /// clear, generation goes even again.
    ///
    /// **Epoch protocol** (two banks): if any registry pin is older than the
    /// current epoch the reset returns [`ResetAttempt::Deferred`] — the
    /// grace-period rule; nobody blocks. Otherwise the *retired* bank (the one
    /// validators are not reading) is cleared off to the side, its `reset_ts`
    /// slot set from a timestamp read after the clear, and only then does the
    /// epoch flip make it current — validators and publishers run at full
    /// speed throughout, and the only ones that fall back are probes straddling
    /// the flip itself. Why dropped bits stay safe is rule 3 of the type-level
    /// docs, applied per bank: every publish whose bits the clear dropped had
    /// folded into that bank before it was retired (or is a straggler that
    /// re-folds into the current bank), so its timestamp was visible before the
    /// post-clear `reset_ts` read, and `start_time >= reset_ts[bank]` excludes
    /// it from every window the flipped bank will ever vouch for.
    pub fn maybe_reset_with(
        &self,
        read_ts: impl FnOnce() -> u64,
        pre_clear: impl FnOnce(),
        post_clear: impl FnOnce(u64),
    ) -> ResetAttempt {
        if self.since_reset.load(SeqCst) < self.ctrl_interval.load(SeqCst) {
            return ResetAttempt::Idle;
        }
        if self
            .resetting
            .compare_exchange(0, 1, SeqCst, SeqCst)
            .is_err()
        {
            return ResetAttempt::Idle;
        }
        if self.mode == ResetMode::Epoch {
            self.controller_step();
        }
        if !self.density_exceeded() {
            // Below threshold: restart the pacing interval so the popcount is
            // not repeated on every subsequent commit.
            self.since_reset.store(0, SeqCst);
            self.resetting.store(0, SeqCst);
            return ResetAttempt::Idle;
        }
        let nw = self.spec.words() as usize;
        match self.mode {
            ResetMode::Seqlock => {
                self.gen.fetch_add(1, SeqCst); // odd: publishers re-OR, validators fall back
                pre_clear();
                for i in 0..nw {
                    self.word(0, i).store(0, SeqCst);
                }
                // Read the timestamp only *after* the clear: any publish whose
                // bits the clear dropped and whose OR completed beforehand had
                // made its timestamp visible before this read, so `reset_ts`
                // covers it and validators that started earlier are sent to
                // the precise walk.
                let ts = read_ts();
                self.reset_ts[0].store(ts, SeqCst);
                self.since_reset.store(0, SeqCst);
                self.gen.fetch_add(1, SeqCst); // even: fast path re-opens
                self.resetting.store(0, SeqCst);
                post_clear(ts);
            }
            ResetMode::Epoch => {
                let e = self.gen.load(SeqCst);
                if !self.pins.drained(e) {
                    // Grace period: a reader is still pinned to the bank this
                    // reset would clear. Defer; the next committer retries.
                    self.resetting.store(0, SeqCst);
                    return ResetAttempt::Deferred;
                }
                let retired = ((e + 1) & 1) as usize;
                pre_clear();
                for i in 0..nw {
                    self.word(retired, i).store(0, SeqCst);
                }
                let ts = read_ts();
                self.reset_ts[retired].store(ts, SeqCst);
                self.since_reset.store(0, SeqCst);
                // The flip: the freshly cleared bank becomes current. Store,
                // not fetch_add — only the guarded resetter ever moves the
                // epoch.
                self.gen.store(e + 1, SeqCst);
                self.resetting.store(0, SeqCst);
                post_clear(ts);
            }
        }
        ResetAttempt::Done
    }

    /// Snapshot of the current bank's summary bits (diagnostics and tests).
    pub fn snapshot(&self) -> Sig {
        let bank = self.bank_of(self.gen.load(SeqCst));
        let nw = self.spec.words() as usize;
        Sig::from_words(
            self.spec,
            (0..nw).map(|i| self.word(bank, i).load(SeqCst)).collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use htm_sim::{AbortCode, HeapBuilder, HtmConfig, HtmSystem};

    const HEAP: usize = 1 << 18;

    fn setup(ring_size: usize) -> (HtmSystem, Ring) {
        let sys = HtmSystem::new(HtmConfig::default(), HEAP);
        let mut b = HeapBuilder::new(HEAP);
        let ring = Ring::alloc(&mut b, ring_size, SigSpec::PAPER);
        (sys, ring)
    }

    #[test]
    fn software_publish_and_validate() {
        let (sys, ring) = setup(16);
        let mut th = sys.thread(0);
        assert_eq!(ring.timestamp_nt(&th), 0);

        let mut wsig = Sig::new(SigSpec::PAPER);
        wsig.add(1000);
        let ts = ring.publish_software(&th, &wsig);
        assert_eq!(ts, 1);

        // A reader of address 1000 that started at time 0 is invalidated.
        let mut rsig = Sig::new(SigSpec::PAPER);
        rsig.add(1000);
        assert_eq!(
            ring.validate_nt(&th, &rsig, 0),
            Err(RingValidationError::Invalid)
        );

        // A reader of an unrelated address advances its start time.
        let mut rsig2 = Sig::new(SigSpec::PAPER);
        rsig2.add(2000);
        assert_eq!(ring.validate_nt(&th, &rsig2, 0), Ok(1));

        // A reader that started after the commit has nothing to validate.
        assert_eq!(ring.validate_nt(&th, &rsig, 1), Ok(1));
        let _ = &mut th;
    }

    #[test]
    fn hardware_publish_updates_timestamp_and_entry() {
        let (sys, ring) = setup(16);
        let mut th = sys.thread(0);
        let mut s = Sig::new(SigSpec::PAPER);
        s.add(777);

        let ts = th.attempt(|tx| ring.publish_tx(tx, &s)).unwrap();
        assert_eq!(ts, 1);
        assert_eq!(ring.timestamp_nt(&th), 1);
        assert!(ring.entry(1).snapshot_nt(&th).contains(777));
    }

    #[test]
    fn hardware_publisher_aborts_when_lock_held() {
        let (sys, ring) = setup(16);
        let mut th = sys.thread(0);
        let wsig = Sig::new(SigSpec::PAPER);
        sys.nt_write(ring.lock_addr(), 1);
        let r = th.attempt(|tx| ring.publish_tx(tx, &wsig));
        assert_eq!(r, Err(AbortCode::Explicit(XABORT_RING_LOCKED)));
    }

    #[test]
    fn software_lock_dooms_subscribed_hardware_publisher() {
        let (sys, ring) = setup(16);
        let wsig = Sig::new(SigSpec::PAPER);
        let mut hw = sys.thread(0);
        let mut tx = hw.begin();
        // Subscribe the lock word (first step of publish_tx).
        assert_eq!(tx.read(ring.lock_addr()), Ok(0));
        // Software committer on another thread takes the lock.
        let sw = sys.thread(1);
        let sig = Sig::new(SigSpec::PAPER);
        ring.publish_software(&sw, &sig);
        // The hardware publisher is doomed before it can bump the timestamp.
        let r = ring.publish_tx(&mut tx, &wsig);
        assert_eq!(r, Err(AbortCode::Conflict));
    }

    #[test]
    fn rollover_detected() {
        let (sys, ring) = setup(8);
        let th = sys.thread(0);
        let empty = Sig::new(SigSpec::PAPER);
        for _ in 0..10 {
            ring.publish_software(&th, &empty);
        }
        // A transaction that started at time 0 cannot validate across 10 commits in
        // an 8-entry ring.
        let rsig = Sig::new(SigSpec::PAPER);
        assert_eq!(
            ring.validate_nt(&th, &rsig, 0),
            Err(RingValidationError::Rollover)
        );
        // One that started at time 4 can (window 6 <= 8).
        assert_eq!(ring.validate_nt(&th, &rsig, 4), Ok(10));
    }

    #[test]
    fn entry_indexing_wraps() {
        let (sys, ring) = setup(8);
        let th = sys.thread(0);
        let mut s1 = Sig::new(SigSpec::PAPER);
        s1.add(1);
        for _ in 0..9 {
            ring.publish_software(&th, &s1);
        }
        // ts 9 lives at slot 1, same as ts 1 did.
        assert_eq!(ring.entry(9).base(), ring.entry(1).base());
        assert!(ring.entry(9).snapshot_nt(&th).contains(1));
    }

    #[test]
    fn concurrent_software_publishers_serialize() {
        let (sys, ring) = setup(1024);
        std::thread::scope(|s| {
            for t in 0..4 {
                let sys = &sys;
                let ring = &ring;
                s.spawn(move || {
                    let th = sys.thread(t);
                    let sig = Sig::new(SigSpec::PAPER);
                    for _ in 0..100 {
                        ring.publish_software(&th, &sig);
                    }
                });
            }
        });
        let th = sys.thread(0);
        assert_eq!(
            ring.timestamp_nt(&th),
            400,
            "every publish must get a unique ts"
        );
    }

    // ---- summary fast path ----

    #[test]
    fn summary_fast_pass_on_disjoint_reader() {
        let (sys, ring) = setup(64);
        let th = sys.thread(0);
        let summary = RingSummary::new(SigSpec::PAPER);
        let mut wsig = Sig::new(SigSpec::PAPER);
        wsig.add(1000);
        for _ in 0..5 {
            ring.publish_software_summarized(&th, &wsig, &summary);
        }
        // Disjoint reader: fast pass, advances to the current timestamp.
        let mut rsig = Sig::new(SigSpec::PAPER);
        rsig.add(2000);
        assert!(!rsig.intersects(&wsig), "test addresses must not collide");
        let (res, fast) = ring.validate_summarized_nt(&th, &summary, &rsig, 0);
        assert_eq!(res, Ok(5));
        assert!(fast, "disjoint reader must take the fast path");
        // Intersecting reader: falls back and is rejected.
        let mut rbad = Sig::new(SigSpec::PAPER);
        rbad.add(1000);
        let (res, fast) = ring.validate_summarized_nt(&th, &summary, &rbad, 0);
        assert_eq!(res, Err(RingValidationError::Invalid));
        assert!(!fast);
    }

    #[test]
    fn summary_fast_pass_survives_rollover() {
        // 8-entry ring, 20 publishes: the precise walk from 0 reports Rollover, but
        // the summary (which covers every publish since reset, regardless of slot
        // overwrites) still passes a disjoint reader.
        let (sys, ring) = setup(8);
        let th = sys.thread(0);
        let summary = RingSummary::new(SigSpec::PAPER);
        let mut wsig = Sig::new(SigSpec::PAPER);
        wsig.add(1000);
        for _ in 0..20 {
            ring.publish_software_summarized(&th, &wsig, &summary);
        }
        let mut rsig = Sig::new(SigSpec::PAPER);
        rsig.add(2000);
        assert_eq!(
            ring.validate_nt(&th, &rsig, 0),
            Err(RingValidationError::Rollover)
        );
        let (res, fast) = ring.validate_summarized_nt(&th, &summary, &rsig, 0);
        assert_eq!(res, Ok(20), "summary pass avoids the spurious rollover abort");
        assert!(fast);
    }

    #[test]
    fn hardware_publish_hand_shake() {
        let (sys, ring) = setup(64);
        let mut th = sys.thread(0);
        let summary = RingSummary::new(SigSpec::PAPER);
        let mut s = Sig::new(SigSpec::PAPER);
        s.add(777);

        let ts = th
            .attempt(|tx| ring.publish_tx_summarized(tx, &s, &summary))
            .unwrap();
        summary.complete_publish(&s);
        assert_eq!(ts, 1);
        assert!(summary.snapshot().contains(777));
        // A reader of 777 must not fast-pass; a disjoint one must.
        let mut rbad = Sig::new(SigSpec::PAPER);
        rbad.add(777);
        assert_eq!(summary.try_fast_pass(&rbad, 0, || 1), None);
        let mut rok = Sig::new(SigSpec::PAPER);
        rok.add(4242);
        assert!(!rok.intersects(&s));
        assert_eq!(summary.try_fast_pass(&rok, 0, || 1), Some(1));
    }

    #[test]
    fn incomplete_publish_blocks_fast_pass() {
        let summary = RingSummary::new(SigSpec::PAPER);
        summary.begin_publish();
        // A publish is in flight (announced, not completed): nobody may fast-pass.
        let rsig = {
            let mut s = Sig::new(SigSpec::PAPER);
            s.add(1);
            s
        };
        assert_eq!(summary.try_fast_pass(&rsig, 0, || 5), None);
        summary.cancel_publish();
        assert_eq!(summary.try_fast_pass(&rsig, 0, || 5), Some(5));
    }

    #[test]
    fn reset_redirects_older_validators_to_precise_walk() {
        let (sys, ring) = setup(1024);
        let th = sys.thread(0);
        let summary = RingSummary::new(SigSpec::PAPER);
        let mut wsig = Sig::new(SigSpec::PAPER);
        // Saturate the summary well past the density threshold.
        for a in 0..SUMMARY_CHECK_INTERVAL + 10 {
            wsig.clear();
            wsig.add((a * 4099) as u32);
            wsig.add((a * 7919 + 13) as u32);
            wsig.add((a * 104_729 + 7) as u32);
            ring.publish_software_summarized(&th, &wsig, &summary);
        }
        assert!(summary.wants_reset());
        assert!(ring.maybe_reset_summary(&th, &summary));
        assert!(summary.snapshot().is_empty());
        let rts = ring.timestamp_nt(&th);
        assert_eq!(summary.reset_ts[0].load(SeqCst), rts);
        // A validator that started before the reset must not fast-pass...
        let mut rsig = Sig::new(SigSpec::PAPER);
        rsig.add(1);
        assert_eq!(summary.try_fast_pass(&rsig, rts - 1, || rts), None);
        // ...but one that starts at/after the reset timestamp may.
        assert_eq!(summary.try_fast_pass(&rsig, rts, || rts), Some(rts));
        // Second reset attempt is a no-op until the interval elapses again.
        assert!(!ring.maybe_reset_summary(&th, &summary));
    }

    // ---- epoch mode ----

    fn saturate(ring: &Ring, th: &htm_sim::HtmThread<'_>, summary: &RingSummary, n: u64) {
        let mut wsig = Sig::new(SigSpec::PAPER);
        for a in 0..n {
            wsig.clear();
            wsig.add((a * 4099) as u32);
            wsig.add((a * 7919 + 13) as u32);
            wsig.add((a * 104_729 + 7) as u32);
            ring.publish_software_summarized(th, &wsig, summary);
        }
    }

    #[test]
    fn epoch_reset_flips_bank_and_redirects_old_windows() {
        let (sys, ring) = setup(4096);
        let th = sys.thread(0);
        let summary = RingSummary::with_tuning(SigSpec::PAPER, SummaryTuning::epochs());
        saturate(&ring, &th, &summary, SUMMARY_CHECK_INTERVAL + 10);
        assert!(summary.wants_reset());
        assert_eq!(summary.gen.load(SeqCst), 0);
        assert!(ring.maybe_reset_summary(&th, &summary));
        assert_eq!(summary.gen.load(SeqCst), 1, "reset flips the epoch");
        assert!(summary.snapshot().is_empty(), "the new current bank is clean");
        let rts = ring.timestamp_nt(&th);
        assert_eq!(summary.reset_ts[1].load(SeqCst), rts);
        // A validator that started before the flip must not fast-pass on the
        // new bank; one at/after the reset timestamp may.
        let mut rsig = Sig::new(SigSpec::PAPER);
        rsig.add(1);
        assert_eq!(summary.try_fast_pass(&rsig, rts - 1, || rts), None);
        assert_eq!(summary.try_fast_pass(&rsig, rts, || rts), Some(rts));
        // Publishes after the flip fold into the new current bank.
        let mut wsig = Sig::new(SigSpec::PAPER);
        wsig.add(31_337);
        ring.publish_software_summarized(&th, &wsig, &summary);
        assert!(summary.snapshot().contains(31_337));
    }

    #[test]
    fn epoch_reset_defers_while_a_reader_is_pinned() {
        let (sys, ring) = setup(4096);
        let th = sys.thread(0);
        let summary = RingSummary::with_tuning(SigSpec::PAPER, SummaryTuning::epochs());
        saturate(&ring, &th, &summary, SUMMARY_CHECK_INTERVAL + 10);
        // A pin at the *current* epoch never blocks: the reset clears the
        // retired bank, which that reader is not probing.
        let e = summary.pin_epoch(7);
        assert_eq!(e, 0);
        assert!(ring.maybe_reset_summary(&th, &summary));
        assert_eq!(summary.gen.load(SeqCst), 1);
        // Simulate a long-running reader that pinned before the flip and is
        // still mid-probe on the old bank (pin_epoch would re-pin at 1, so
        // plant the stale pin directly). The next reset would clear exactly
        // that bank, so it must defer — without blocking anyone.
        summary.pins.set(7, 0);
        saturate(&ring, &th, &summary, SUMMARY_CHECK_INTERVAL + 10);
        assert_eq!(
            summary.maybe_reset_with(|| ring.timestamp_nt(&th), || {}, |_| {}),
            ResetAttempt::Deferred
        );
        assert_eq!(summary.gen.load(SeqCst), 1, "no flip under a stale pin");
        // The reader finishes and unpins: the deferred reset now proceeds.
        summary.unpin(7);
        assert!(ring.maybe_reset_summary(&th, &summary));
        assert_eq!(summary.gen.load(SeqCst), 2);
    }

    #[test]
    fn epoch_mode_probe_with_publisher_in_flight_reports_inflight() {
        let summary = RingSummary::with_tuning(SigSpec::PAPER, SummaryTuning::epochs());
        summary.begin_publish();
        let mut rsig = Sig::new(SigSpec::PAPER);
        rsig.add(1);
        assert_eq!(
            summary.try_fast_pass_at(0, &rsig, 0, || 5),
            Err(FastMiss::Inflight)
        );
        assert_eq!(summary.pins.pinned(0), None, "probe unpins on exit");
        summary.cancel_publish();
        assert_eq!(summary.try_fast_pass_at(0, &rsig, 0, || 5), Ok(5));
    }

    #[test]
    fn dirty_probe_reports_dirty_and_feeds_the_controller() {
        let summary = RingSummary::with_tuning(SigSpec::PAPER, SummaryTuning::epochs());
        let mut wsig = Sig::new(SigSpec::PAPER);
        wsig.add(1000);
        summary.begin_publish();
        summary.complete_publish_masked(&wsig, u64::MAX, 1);
        let mut rbad = Sig::new(SigSpec::PAPER);
        rbad.add(1000);
        assert_eq!(
            summary.try_fast_pass_at(0, &rbad, 0, || 1),
            Err(FastMiss::Dirty)
        );
        assert_eq!(summary.miss_dirty.load(SeqCst), 1);
        assert_eq!(
            summary.clean_since_at(0, &rbad, 0),
            Err(FastMiss::Dirty),
            "the timestamp-free probe classifies the same way"
        );
        assert_eq!(summary.miss_dirty.load(SeqCst), 2);
    }

    #[test]
    fn controller_tightens_on_dirty_and_relaxes_on_inflight() {
        let tuning = SummaryTuning {
            mode: ResetMode::Epoch,
            check_interval: 4,
            ..SummaryTuning::epochs()
        };
        let summary = RingSummary::with_tuning(SigSpec::PAPER, tuning);
        let (num0, den) = summary.density_threshold();
        assert_eq!((num0, den), (16, 48), "1/3 exactly on the controller grid");

        // Dominant dirty evidence: threshold tightens, interval halves (to the
        // floor).
        for _ in 0..32 {
            summary.note_miss(FastMiss::Dirty);
        }
        summary.controller_step();
        let (num1, _) = summary.density_threshold();
        assert_eq!(num1, num0 - den / CTRL_SCALE);
        assert_eq!(summary.check_interval(), CTRL_MIN_INTERVAL);

        // Dominant in-flight evidence: both relax again.
        for _ in 0..32 {
            summary.note_miss(FastMiss::Inflight);
        }
        summary.controller_step();
        assert_eq!(summary.density_threshold().0, num0);
        assert_eq!(summary.check_interval(), CTRL_MIN_INTERVAL * 2);

        // Mixed evidence moves nothing, and the counters were harvested.
        summary.note_miss(FastMiss::Dirty);
        summary.note_miss(FastMiss::Inflight);
        summary.controller_step();
        assert_eq!(summary.density_threshold().0, num0);
        assert_eq!(summary.check_interval(), CTRL_MIN_INTERVAL * 2);

        // Clamps: drive hard both ways and check the bounds.
        for _ in 0..64 {
            for _ in 0..32 {
                summary.note_miss(FastMiss::Dirty);
            }
            summary.controller_step();
        }
        assert_eq!(summary.density_threshold().0, den / 8, "floor: 1/8");
        assert_eq!(summary.check_interval(), CTRL_MIN_INTERVAL);
        for _ in 0..64 {
            for _ in 0..32 {
                summary.note_miss(FastMiss::Inflight);
            }
            summary.controller_step();
        }
        assert_eq!(summary.density_threshold().0, den / 2, "ceiling: 1/2");
        assert_eq!(summary.check_interval(), CTRL_MAX_INTERVAL);
    }

    #[test]
    fn seqlock_summary_keeps_legacy_threshold_fixed() {
        let summary = RingSummary::new(SigSpec::PAPER);
        assert_eq!(summary.mode(), ResetMode::Seqlock);
        assert_eq!(summary.density_threshold(), (16, 48));
        assert_eq!(summary.check_interval(), SUMMARY_CHECK_INTERVAL);
    }
}
