//! The global ring: a circular buffer of committed write signatures ordered by
//! commit timestamp, used to validate in-flight transactions against transactions
//! that committed after they started (RingSTM-style; §5.1 "global-ring").
//!
//! Two publish paths exist because Part-HTM commits writers from two worlds:
//!
//! * **Hardware** ([`Ring::publish_tx`]): the fast path increments the timestamp and
//!   stores its write signature into the ring *inside* its hardware transaction
//!   (Fig. 1 lines 9–11); HTM conflict detection on the timestamp line serialises
//!   concurrent hardware publishers.
//! * **Software** ([`Ring::publish_software`]): the partitioned path's global commit
//!   must bump the timestamp and publish atomically *outside* any hardware
//!   transaction (Fig. 1 lines 45–47, the paper's "atomic" block). We implement the
//!   atomic block with a ring lock that hardware publishers subscribe to: acquiring
//!   it (a non-transactional CAS) dooms every hardware transaction that already read
//!   the lock word — strong atomicity makes the two worlds mutually exclusive.

use crate::heap_sig::HeapSig;
use crate::sig::Sig;
use crate::spec::SigSpec;
use htm_sim::abort::TxResult;
use htm_sim::{Addr, HeapBuilder, HtmThread, HtmTx};

/// Explicit-abort payload used when a hardware publisher finds the ring lock held.
pub const XABORT_RING_LOCKED: u8 = 0xA1;

/// Validation failure against the ring.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RingValidationError {
    /// A transaction that committed after `start_time` wrote something this
    /// transaction read.
    Invalid,
    /// The ring wrapped past the validation window; entries needed for validation
    /// were overwritten (Fig. 1 lines 39–40: "abort at ring rollover").
    Rollover,
}

/// The global ring resident in the simulated heap.
#[derive(Clone, Copy, Debug)]
pub struct Ring {
    lock: Addr,
    timestamp: Addr,
    entries: Addr,
    size: u64,
    spec: SigSpec,
}

impl Ring {
    /// Words per ring entry: one line holding the non-zero-word mask, then the
    /// signature words. Entries whose mask bit is clear are never read, so stale
    /// slot content from earlier laps is harmless and publishers only store the
    /// words they actually use.
    fn entry_words(spec: SigSpec) -> u32 {
        8 + spec.words()
    }

    /// Allocate a ring with `size` entries of geometry `spec`. The lock and the
    /// timestamp each get their own cache line so that subscribing one does not
    /// false-conflict with bumps of the other.
    pub fn alloc(b: &mut HeapBuilder, size: usize, spec: SigSpec) -> Self {
        assert!(size.is_power_of_two(), "ring size must be a power of two");
        assert!(spec.words() <= 64, "entry mask is a single word");
        let lock = b.alloc_lines(1);
        let timestamp = b.alloc_lines(1);
        let entries = b.alloc_aligned(size * Self::entry_words(spec) as usize);
        Self {
            lock,
            timestamp,
            entries,
            size: size as u64,
            spec,
        }
    }

    /// Number of entries.
    pub fn size(&self) -> u64 {
        self.size
    }

    /// Signature geometry.
    pub fn spec(&self) -> SigSpec {
        self.spec
    }

    /// Heap address of the ring lock word.
    pub fn lock_addr(&self) -> Addr {
        self.lock
    }

    /// Heap address of the global timestamp word.
    pub fn timestamp_addr(&self) -> Addr {
        self.timestamp
    }

    /// Heap address of entry `ts`'s non-zero-word mask.
    fn entry_mask_addr(&self, ts: u64) -> Addr {
        let idx = (ts % self.size) as u32;
        self.entries + idx * Self::entry_words(self.spec)
    }

    /// The signature words of the entry for the commit with timestamp `ts`.
    pub fn entry(&self, ts: u64) -> HeapSig {
        HeapSig::at(self.entry_mask_addr(ts) + 8, self.spec)
    }

    /// Non-transactional intersection of ring entry `ts` with `sig`, honouring the
    /// entry's non-zero-word mask (words outside the mask hold stale content from an
    /// earlier lap and are never read).
    pub fn entry_intersects_nt(&self, th: &HtmThread<'_>, ts: u64, sig: &Sig) -> bool {
        let mask = th.nt_read(self.entry_mask_addr(ts));
        if mask == 0 {
            return false;
        }
        let entry = self.entry(ts);
        for (i, &w) in sig.words().iter().enumerate() {
            if w != 0 && mask & (1 << i) != 0 && th.nt_read(entry.word_addr(i as u32)) & w != 0 {
                return true;
            }
        }
        false
    }

    /// Read the global timestamp non-transactionally (strongly atomic).
    pub fn timestamp_nt(&self, th: &HtmThread<'_>) -> u64 {
        th.nt_read(self.timestamp)
    }

    /// Read the global timestamp inside a hardware transaction — this *subscribes*
    /// the transaction to the timestamp line, so any later commit (hardware bump or
    /// software store) dooms it. Part-HTM-O's sub-HTM begin uses this (Fig. 2
    /// lines 23–24).
    pub fn timestamp_tx(&self, tx: &mut HtmTx<'_, '_>) -> TxResult<u64> {
        tx.read(self.timestamp)
    }

    /// Hardware publish (fast path commit, Fig. 1 lines 9–11): subscribe the ring
    /// lock (explicitly aborting if a software committer holds it), bump the
    /// timestamp and store `write_sig` into the new entry — all inside `tx`, hence
    /// atomic with the transaction's own commit. The signature is supplied as its
    /// software value (the caller's mirror tracks the heap copy exactly), so the
    /// publish is write-only; every entry word is stored because the slot holds a
    /// previous commit's signature. Returns the new timestamp.
    pub fn publish_tx(&self, tx: &mut HtmTx<'_, '_>, write_sig: &Sig) -> TxResult<u64> {
        if tx.read(self.lock)? != 0 {
            return Err(tx.xabort(XABORT_RING_LOCKED));
        }
        let ts = tx.read(self.timestamp)? + 1;
        let entry = self.entry(ts);
        let mut mask = 0u64;
        for (i, &w) in write_sig.words().iter().enumerate() {
            if w != 0 {
                mask |= 1 << i;
                tx.write(entry.word_addr(i as u32), w)?;
            }
        }
        tx.write(self.entry_mask_addr(ts), mask)?;
        tx.write(self.timestamp, ts)?;
        Ok(ts)
    }

    /// Software publish (partitioned path global commit, Fig. 1 lines 45–47):
    /// acquire the ring lock — the CAS dooms hardware publishers that subscribed the
    /// lock word — then write the entry, then bump the timestamp (entry-before-bump
    /// so validators that read timestamp `ts` always see complete entries `<= ts`).
    /// Returns the new timestamp.
    pub fn publish_software(&self, th: &HtmThread<'_>, sig: &Sig) -> u64 {
        while th.nt_cas(self.lock, 0, 1).is_err() {
            std::thread::yield_now();
        }
        let ts = th.nt_read(self.timestamp) + 1;
        let entry = self.entry(ts);
        let mut mask = 0u64;
        for (i, &w) in sig.words().iter().enumerate() {
            if w != 0 {
                mask |= 1 << i;
                th.nt_write(entry.word_addr(i as u32), w);
            }
        }
        th.nt_write(self.entry_mask_addr(ts), mask);
        th.nt_write(self.timestamp, ts);
        th.nt_write(self.lock, 0);
        ts
    }

    /// Write entry `ts`'s signature words and mask non-transactionally, for software
    /// committers that manage the ring lock and timestamp themselves (RingSTM's
    /// writer commit). The caller must hold the ring lock.
    pub fn write_entry_nt(&self, th: &HtmThread<'_>, ts: u64, sig: &Sig) {
        let entry = self.entry(ts);
        let mut mask = 0u64;
        for (i, &w) in sig.words().iter().enumerate() {
            if w != 0 {
                mask |= 1 << i;
                th.nt_write(entry.word_addr(i as u32), w);
            }
        }
        th.nt_write(self.entry_mask_addr(ts), mask);
    }

    /// Validate `read_sig` against every commit later than `start_time` (Fig. 1
    /// lines 34–41). On success returns the new start time (the timestamp covered by
    /// this validation), letting the caller advance and avoid re-validating.
    pub fn validate_nt(
        &self,
        th: &HtmThread<'_>,
        read_sig: &Sig,
        start_time: u64,
    ) -> Result<u64, RingValidationError> {
        let ts = self.timestamp_nt(th);
        if ts == start_time {
            return Ok(ts);
        }
        let mut i = ts;
        while i > start_time {
            if self.entry_intersects_nt(th, i, read_sig) {
                return Err(RingValidationError::Invalid);
            }
            i -= 1;
        }
        // Rollover check with a re-read: if the window wrapped while we were
        // validating, some inspected entries may have been overwritten by newer
        // commits and the loop above cannot be trusted.
        if self.timestamp_nt(th) > start_time + self.size {
            return Err(RingValidationError::Rollover);
        }
        Ok(ts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use htm_sim::{AbortCode, HeapBuilder, HtmConfig, HtmSystem};

    const HEAP: usize = 1 << 18;

    fn setup(ring_size: usize) -> (HtmSystem, Ring) {
        let sys = HtmSystem::new(HtmConfig::default(), HEAP);
        let mut b = HeapBuilder::new(HEAP);
        let ring = Ring::alloc(&mut b, ring_size, SigSpec::PAPER);
        (sys, ring)
    }

    #[test]
    fn software_publish_and_validate() {
        let (sys, ring) = setup(16);
        let mut th = sys.thread(0);
        assert_eq!(ring.timestamp_nt(&th), 0);

        let mut wsig = Sig::new(SigSpec::PAPER);
        wsig.add(1000);
        let ts = ring.publish_software(&th, &wsig);
        assert_eq!(ts, 1);

        // A reader of address 1000 that started at time 0 is invalidated.
        let mut rsig = Sig::new(SigSpec::PAPER);
        rsig.add(1000);
        assert_eq!(
            ring.validate_nt(&th, &rsig, 0),
            Err(RingValidationError::Invalid)
        );

        // A reader of an unrelated address advances its start time.
        let mut rsig2 = Sig::new(SigSpec::PAPER);
        rsig2.add(2000);
        assert_eq!(ring.validate_nt(&th, &rsig2, 0), Ok(1));

        // A reader that started after the commit has nothing to validate.
        assert_eq!(ring.validate_nt(&th, &rsig, 1), Ok(1));
        let _ = &mut th;
    }

    #[test]
    fn hardware_publish_updates_timestamp_and_entry() {
        let (sys, ring) = setup(16);
        let mut th = sys.thread(0);
        let mut s = Sig::new(SigSpec::PAPER);
        s.add(777);

        let ts = th.attempt(|tx| ring.publish_tx(tx, &s)).unwrap();
        assert_eq!(ts, 1);
        assert_eq!(ring.timestamp_nt(&th), 1);
        assert!(ring.entry(1).snapshot_nt(&th).contains(777));
    }

    #[test]
    fn hardware_publisher_aborts_when_lock_held() {
        let (sys, ring) = setup(16);
        let mut th = sys.thread(0);
        let wsig = Sig::new(SigSpec::PAPER);
        sys.nt_write(ring.lock_addr(), 1);
        let r = th.attempt(|tx| ring.publish_tx(tx, &wsig));
        assert_eq!(r, Err(AbortCode::Explicit(XABORT_RING_LOCKED)));
    }

    #[test]
    fn software_lock_dooms_subscribed_hardware_publisher() {
        let (sys, ring) = setup(16);
        let wsig = Sig::new(SigSpec::PAPER);
        let mut hw = sys.thread(0);
        let mut tx = hw.begin();
        // Subscribe the lock word (first step of publish_tx).
        assert_eq!(tx.read(ring.lock_addr()), Ok(0));
        // Software committer on another thread takes the lock.
        let sw = sys.thread(1);
        let sig = Sig::new(SigSpec::PAPER);
        ring.publish_software(&sw, &sig);
        // The hardware publisher is doomed before it can bump the timestamp.
        let r = ring.publish_tx(&mut tx, &wsig);
        assert_eq!(r, Err(AbortCode::Conflict));
    }

    #[test]
    fn rollover_detected() {
        let (sys, ring) = setup(8);
        let th = sys.thread(0);
        let empty = Sig::new(SigSpec::PAPER);
        for _ in 0..10 {
            ring.publish_software(&th, &empty);
        }
        // A transaction that started at time 0 cannot validate across 10 commits in
        // an 8-entry ring.
        let rsig = Sig::new(SigSpec::PAPER);
        assert_eq!(
            ring.validate_nt(&th, &rsig, 0),
            Err(RingValidationError::Rollover)
        );
        // One that started at time 4 can (window 6 <= 8).
        assert_eq!(ring.validate_nt(&th, &rsig, 4), Ok(10));
    }

    #[test]
    fn entry_indexing_wraps() {
        let (sys, ring) = setup(8);
        let th = sys.thread(0);
        let mut s1 = Sig::new(SigSpec::PAPER);
        s1.add(1);
        for _ in 0..9 {
            ring.publish_software(&th, &s1);
        }
        // ts 9 lives at slot 1, same as ts 1 did.
        assert_eq!(ring.entry(9).base(), ring.entry(1).base());
        assert!(ring.entry(9).snapshot_nt(&th).contains(1));
    }

    #[test]
    fn concurrent_software_publishers_serialize() {
        let (sys, ring) = setup(1024);
        std::thread::scope(|s| {
            for t in 0..4 {
                let sys = &sys;
                let ring = &ring;
                s.spawn(move || {
                    let th = sys.thread(t);
                    let sig = Sig::new(SigSpec::PAPER);
                    for _ in 0..100 {
                        ring.publish_software(&th, &sig);
                    }
                });
            }
        });
        let th = sys.thread(0);
        assert_eq!(
            ring.timestamp_nt(&th),
            400,
            "every publish must get a unique ts"
        );
    }
}
