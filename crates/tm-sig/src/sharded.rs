//! Address-region sharding of the global ring.
//!
//! PR 2's summary made *validation* cheap, but every software-path commit still
//! serialised on one global ring lock and one global timestamp word — the last
//! global serialisation point of the software framework. [`ShardedRing`] removes
//! it by splitting the ring into `N` independent shards keyed by **signature word
//! range**: with a `W`-word geometry, shard `s` owns signature words
//! `[s·W/N, (s+1)·W/N)`, i.e. the addresses that hash into those words. Each
//! shard is a complete [`Ring`] — its own lock, timestamp and entry buffer — and
//! is paired with its own [`RingSummary`].
//!
//! * **Publishers** touch only the shards their write signature's non-zero-word
//!   mask intersects ([`ShardedRing::shard_mask`]), and each touched shard's
//!   entry stores only the words of that shard's range — so per-shard entries are
//!   *restricted*, not duplicated, and a validator probing word `w` always finds
//!   it in exactly one shard.
//! * **Validators** intersect their read signature against only the touched
//!   shards' summaries, falling back to a per-shard precise walk, and track a
//!   per-shard timestamp vector ([`ShardTimes`]) instead of one start time.
//!
//! Disjoint-region commits proceed with no shared writes at all; the cross-shard
//! serializability argument (why per-shard timestamp windows still admit no real
//! conflict even though a multi-shard publish is not atomic across shards) is
//! spelled out in `docs/ring-sharding.md` and summarised on
//! [`ShardedRing::validate_summarized_nt`].

use htm_sim::abort::TxResult;
use htm_sim::{HeapBuilder, HtmThread, HtmTx};

use crate::ring::{Ring, RingSummary, RingValidationError};
use crate::sig::Sig;
use crate::spec::SigSpec;

/// Hard upper bound on the shard count; [`ShardTimes`] and the per-shard stats
/// arrays are sized by it. Requests above it are clamped by [`ShardedRing::alloc`].
pub const MAX_RING_SHARDS: usize = 16;

/// Per-shard timestamp vector: the sharded analogue of the single-ring
/// `start_time`. A validator carries one timestamp per shard — the newest commit
/// of that shard its reads are known consistent against — and advances each slot
/// independently as per-shard validations succeed.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ShardTimes {
    t: [u64; MAX_RING_SHARDS],
}

impl ShardTimes {
    /// All-zero vector (the state before any commit).
    pub fn new() -> Self {
        Self::default()
    }

    /// Timestamp recorded for shard `s`.
    #[inline]
    pub fn get(&self, s: usize) -> u64 {
        self.t[s]
    }

    /// Set shard `s`'s timestamp.
    #[inline]
    pub fn set(&mut self, s: usize, ts: u64) {
        self.t[s] = ts;
    }
}

/// Outcome of [`ShardedRing::validate_summarized_nt`]: the overall verdict plus,
/// for the executors' statistics, which touched shards were decided by the
/// summary fast pass and which needed a precise walk.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ShardedValidation {
    /// `Ok(())` when every touched shard validated; otherwise the first per-shard
    /// failure.
    pub result: Result<(), RingValidationError>,
    /// Touched shards decided by the summary fast pass (bit `s` ⇔ shard `s`).
    pub fast_shards: u32,
    /// Touched shards that ran the precise entry walk (bit `s` ⇔ shard `s`).
    pub walked_shards: u32,
}

/// Iterate the set bit positions of a shard mask, ascending.
#[inline]
fn bits(mut mask: u32) -> impl Iterator<Item = usize> {
    std::iter::from_fn(move || {
        if mask == 0 {
            None
        } else {
            let s = mask.trailing_zeros() as usize;
            mask &= mask - 1;
            Some(s)
        }
    })
}

/// The global ring split into word-range shards (see the module docs). Like
/// [`Ring`], this is a plain-old-data heap handle; the host-side atomics live in
/// the companion [`ShardedSummary`].
#[derive(Clone, Debug)]
pub struct ShardedRing {
    shards: Vec<Ring>,
    /// log2(words per shard): shard of word `w` is `w >> shift`.
    shift: u32,
    spec: SigSpec,
}

impl ShardedRing {
    /// Allocate `shard_count` shards (power of two) of `entries_per_shard`
    /// entries each, geometry `spec`. The count is clamped so that every shard
    /// owns at least one signature word and at most [`MAX_RING_SHARDS`] shards
    /// exist; `shard_count == 1` recovers the single global ring exactly (shard 0
    /// is a complete [`Ring`] over the whole geometry).
    pub fn alloc(
        b: &mut HeapBuilder,
        shard_count: usize,
        entries_per_shard: usize,
        spec: SigSpec,
    ) -> Self {
        assert!(
            shard_count >= 1 && shard_count.is_power_of_two(),
            "shard count must be a power of two"
        );
        assert!(spec.words() <= 64, "sharding keys off the non-zero-word mask");
        let words = spec.words() as usize;
        let mut n = shard_count.min(MAX_RING_SHARDS).min(words);
        // Every shard must own the same whole number of words.
        while !words.is_multiple_of(n) {
            n /= 2;
        }
        let shards = (0..n)
            .map(|_| Ring::alloc(b, entries_per_shard, spec))
            .collect();
        Self {
            shards,
            shift: (words / n).trailing_zeros(),
            spec,
        }
    }

    /// Number of shards (after clamping).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Signature geometry.
    pub fn spec(&self) -> SigSpec {
        self.spec
    }

    /// Signature words owned by each shard.
    pub fn words_per_shard(&self) -> u32 {
        1 << self.shift
    }

    /// Shard `s`'s underlying ring. Shard 0 doubles as the workspace's
    /// single-ring view: it is a complete [`Ring`] and the RingSTM baseline
    /// publishes full signatures through its plain API.
    pub fn shard(&self, s: usize) -> &Ring {
        &self.shards[s]
    }

    /// The shard owning signature word `w`.
    #[inline]
    pub fn shard_of_word(&self, w: u32) -> usize {
        (w >> self.shift) as usize
    }

    /// Word mask of shard `s`'s word range (bit `i` set ⇔ shard `s` owns word `i`).
    #[inline]
    pub fn shard_word_mask(&self, s: usize) -> u64 {
        let wps = 1u32 << self.shift;
        if wps >= 64 {
            u64::MAX
        } else {
            ((1u64 << wps) - 1) << (s as u32 * wps)
        }
    }

    /// Shards touched by `sig` (bit `s` ⇔ some non-zero word of `sig` falls in
    /// shard `s`'s range). An empty signature touches nothing.
    pub fn shard_mask(&self, sig: &Sig) -> u32 {
        let mut m = 0u32;
        let mut words = sig.nonzero_mask();
        while words != 0 {
            let s = (words.trailing_zeros() >> self.shift) as usize;
            m |= 1 << s;
            words &= !self.shard_word_mask(s);
        }
        m
    }

    /// Read every shard's timestamp non-transactionally into `out`. Taken at
    /// transaction begin: the vector is the validator's initial window.
    pub fn timestamps_nt(&self, th: &HtmThread<'_>, out: &mut ShardTimes) {
        for (s, ring) in self.shards.iter().enumerate() {
            out.t[s] = ring.timestamp_nt(th);
        }
    }

    /// Compare every shard's timestamp against `times` *inside* a hardware
    /// transaction, subscribing each shard's timestamp line (the sharded analogue
    /// of [`Ring::timestamp_tx`] for Part-HTM-O's sub-HTM begin): any later
    /// commit in any shard dooms the transaction. Returns whether all match; a
    /// `false` return leaves some lines unread, which is fine because the caller
    /// immediately aborts.
    pub fn timestamps_match_tx(
        &self,
        tx: &mut HtmTx<'_, '_>,
        times: &ShardTimes,
    ) -> TxResult<bool> {
        for (s, ring) in self.shards.iter().enumerate() {
            if ring.timestamp_tx(tx)? != times.t[s] {
                return Ok(false);
            }
        }
        Ok(true)
    }

    /// Hardware publish across every shard `write_sig` touches, inside `tx`: per
    /// touched shard (ascending), check the shard lock, bump the shard timestamp
    /// and store the word-range-restricted entry; then announce the publish to
    /// every touched shard's summary as the last body step (past it the
    /// transaction either commits — making all bumps visible atomically, HTM
    /// gives multi-shard hardware publishes the atomicity software ones lack — or
    /// aborts). Returns the touched-shard mask and the per-shard commit
    /// timestamps; the caller must finish the hand-shake with
    /// [`ShardedRing::complete_publish`] on commit (passing the returned mask
    /// *and* timestamps — they feed the fold watermark) or
    /// [`ShardedRing::cancel_publish`] on abort, passing the returned mask.
    pub fn publish_tx_summarized(
        &self,
        tx: &mut HtmTx<'_, '_>,
        write_sig: &Sig,
        summaries: &ShardedSummary,
    ) -> TxResult<(u32, ShardTimes)> {
        let smask = self.shard_mask(write_sig);
        let mut times = ShardTimes::new();
        for s in bits(smask) {
            times.t[s] =
                self.shards[s].publish_tx_masked(tx, write_sig, self.shard_word_mask(s))?;
        }
        // Announce *before* any timestamp store can become visible (they publish
        // at commit, which is after this body step by construction).
        for s in bits(smask) {
            summaries.shards[s].begin_publish();
        }
        Ok((smask, times))
    }

    /// Commit half of the hardware hand-shake: fold `write_sig`'s per-shard word
    /// ranges into every summary in `shard_mask`, recording each shard's commit
    /// timestamp as its fold watermark (`shard_mask` and `times` as returned by
    /// [`ShardedRing::publish_tx_summarized`]).
    pub fn complete_publish(
        &self,
        write_sig: &Sig,
        shard_mask: u32,
        times: &ShardTimes,
        summaries: &ShardedSummary,
    ) {
        for s in bits(shard_mask) {
            summaries.shards[s].complete_publish_masked(
                write_sig,
                self.shard_word_mask(s),
                times.t[s],
            );
        }
    }

    /// Abort half of the hardware hand-shake: retire the announcement in every
    /// summary in `shard_mask` (no timestamps became visible, nothing to fold).
    pub fn cancel_publish(&self, shard_mask: u32, summaries: &ShardedSummary) {
        for s in bits(shard_mask) {
            summaries.shards[s].cancel_publish();
        }
    }

    /// Software publish across every shard `sig` touches (the partitioned path's
    /// global commit), in three phases:
    ///
    /// 1. acquire the touched shards' ring locks in **ascending shard order** —
    ///    the one global lock order, so multi-shard committers cannot deadlock
    ///    (and each CAS dooms hardware publishers subscribed to that shard);
    /// 2. per touched shard, ascending: reserve the next timestamp, write the
    ///    word-range-restricted entry, announce to the shard summary, then bump
    ///    the shard timestamp (entry-before-bump per shard, exactly as in
    ///    [`Ring::publish_software`]);
    /// 3. release all locks, then complete the summary hand-shakes.
    ///
    /// Ascending reservation keeps a global serialisation order: if two commits
    /// share any shard, the shard's lock orders them identically in *every*
    /// shard they share. Returns the touched-shard mask and per-shard commit
    /// timestamps.
    pub fn publish_software_summarized(
        &self,
        th: &HtmThread<'_>,
        sig: &Sig,
        summaries: &ShardedSummary,
    ) -> (u32, ShardTimes) {
        let smask = self.shard_mask(sig);
        let mut times = ShardTimes::new();
        for s in bits(smask) {
            let lock = self.shards[s].lock_addr();
            while th.nt_cas(lock, 0, 1).is_err() {
                std::thread::yield_now();
            }
        }
        for s in bits(smask) {
            let ring = &self.shards[s];
            let ts = ring.timestamp_nt(th) + 1;
            ring.write_entry_masked_nt(th, ts, sig, self.shard_word_mask(s));
            summaries.shards[s].begin_publish();
            th.nt_write(ring.timestamp_addr(), ts);
            times.t[s] = ts;
        }
        for s in bits(smask) {
            th.nt_write(self.shards[s].lock_addr(), 0);
        }
        for s in bits(smask) {
            summaries.shards[s].complete_publish_masked(sig, self.shard_word_mask(s), times.t[s]);
        }
        (smask, times)
    }

    /// Validate `read_sig` against every shard, advancing `times` per shard.
    ///
    /// Touched shards (those `read_sig`'s word mask intersects) go through the
    /// shard summary's fast pass, falling back to that shard's precise entry
    /// walk. Untouched shards cannot hold a conflict — a commit's entry in shard
    /// `s` carries only shard `s`'s word range, and `read_sig` has no bits there
    /// — so their slot is simply advanced to the shard's current timestamp (one
    /// non-transactional read), keeping windows short and Part-HTM-O's
    /// subscription vector exact.
    ///
    /// **Why per-shard windows are sound without cross-shard publish
    /// atomicity:** a conflict on signature word `w` is always witnessed in `w`'s
    /// owning shard, because the writer bumps that shard's timestamp only
    /// *after* its data writes are done (eager writes complete before global
    /// commit) and the validator snapshots that shard's timestamp *before* the
    /// reads it covers. If writer and validator overlap on `w`, the validator's
    /// window in `w`'s shard either contains the writer's entry (detected) or
    /// closed before the writer's bump — in which case the validator's reads all
    /// preceded the writer's writes and no value was missed. Other shards of the
    /// same multi-shard commit need no coordinated window. The full argument is
    /// in `docs/ring-sharding.md`.
    pub fn validate_summarized_nt(
        &self,
        th: &HtmThread<'_>,
        summaries: &ShardedSummary,
        read_sig: &Sig,
        times: &mut ShardTimes,
    ) -> ShardedValidation {
        let smask = self.shard_mask(read_sig);
        let mut fast_shards = 0u32;
        let mut walked_shards = 0u32;
        for (s, ring) in self.shards.iter().enumerate() {
            if smask & (1 << s) == 0 {
                times.t[s] = ring.timestamp_nt(th);
                continue;
            }
            let (res, fast) =
                ring.validate_summarized_nt(th, &summaries.shards[s], read_sig, times.t[s]);
            match res {
                Ok(ts) => {
                    times.t[s] = ts;
                    if fast {
                        fast_shards |= 1 << s;
                    } else {
                        walked_shards |= 1 << s;
                    }
                }
                Err(e) => {
                    // A failing validation is always decided by the walk (the
                    // fast pass only ever says "definitely clean").
                    walked_shards |= 1 << s;
                    return ShardedValidation {
                        result: Err(e),
                        fast_shards,
                        walked_shards,
                    };
                }
            }
        }
        ShardedValidation {
            result: Ok(()),
            fast_shards,
            walked_shards,
        }
    }

    /// Cheap validation for executors that re-validate from a begin-time
    /// snapshot and do **not** subscribe shard timestamps (Part-HTM; Part-HTM-O
    /// must use [`ShardedRing::validate_summarized_nt`], whose advanced windows
    /// keep its subscription vector convergent).
    ///
    /// Only touched shards are probed, untouched shards are skipped outright —
    /// their `times` slot keeps the begin-time value, which is exactly the
    /// window start validation needs if `read_sig` later grows a bit there —
    /// and a clean probe ([`RingSummary::clean_since`]) never reads the shard
    /// timestamp: the summary alone proves no entry published after `times[s]`
    /// collides, and the window advances to the shard's fold-completion
    /// watermark (a host-side atomic), keeping later windows short without a
    /// simulated-memory access. The common no-conflict case therefore touches
    /// no simulated memory at all. Only a failed probe walks the shard
    /// precisely (advancing its window to the shard timestamp, so repeated
    /// fallbacks stay short).
    pub fn validate_touched_nt(
        &self,
        th: &HtmThread<'_>,
        summaries: &ShardedSummary,
        read_sig: &Sig,
        times: &mut ShardTimes,
    ) -> ShardedValidation {
        let smask = self.shard_mask(read_sig);
        let mut fast_shards = 0u32;
        let mut walked_shards = 0u32;
        for s in bits(smask) {
            if let Some(adv) = summaries.shards[s].clean_since(read_sig, times.t[s]) {
                times.t[s] = times.t[s].max(adv);
                fast_shards |= 1 << s;
                continue;
            }
            walked_shards |= 1 << s;
            match self.shards[s].validate_nt(th, read_sig, times.t[s]) {
                Ok(ts) => times.t[s] = ts,
                Err(e) => {
                    return ShardedValidation {
                        result: Err(e),
                        fast_shards,
                        walked_shards,
                    }
                }
            }
        }
        ShardedValidation {
            result: Ok(()),
            fast_shards,
            walked_shards,
        }
    }

    /// Run the density check on every shard summary and reset those that want it
    /// (see [`Ring::maybe_reset_summary`]). Returns how many shards were reset.
    pub fn maybe_reset_summaries(&self, th: &HtmThread<'_>, summaries: &ShardedSummary) -> u64 {
        let mut n = 0;
        for (s, ring) in self.shards.iter().enumerate() {
            if ring.maybe_reset_summary(th, &summaries.shards[s]) {
                n += 1;
            }
        }
        n
    }

    /// Build the matching host-side summary set: one word-range-masked
    /// [`RingSummary`] per shard, geometry kept in sync with this ring.
    pub fn new_summary(&self) -> ShardedSummary {
        ShardedSummary {
            shards: (0..self.shards.len())
                .map(|s| RingSummary::new_masked(self.spec, self.shard_word_mask(s)))
                .collect(),
        }
    }
}

/// Host-side companion to a [`ShardedRing`]: one [`RingSummary`] per shard, each
/// masked to its shard's word range. Built by [`ShardedRing::new_summary`] so
/// the geometry can never drift from the ring's.
#[derive(Debug)]
pub struct ShardedSummary {
    shards: Vec<RingSummary>,
}

impl ShardedSummary {
    /// Number of shard summaries.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Shard `s`'s summary.
    pub fn shard(&self, s: usize) -> &RingSummary {
        &self.shards[s]
    }

    /// Begin-time window snapshot from the fold watermarks alone — zero
    /// simulated-heap accesses, one host atomic load per shard.
    ///
    /// Sound for executors that use the vector purely as validation windows
    /// (Part-HTM's partitioned path): each shard's watermark only ever names
    /// publishes whose writes were visible before the load (see
    /// [`RingSummary::folded_ts`]), and a lagging watermark merely widens the
    /// window. **Not** a substitute for [`ShardedRing::timestamps_nt`] when
    /// the vector must *equal* the live shard timestamps — Part-HTM-O's
    /// sub-HTM begin compares it against the subscribed timestamp lines via
    /// [`ShardedRing::timestamps_match_tx`], and a lagging entry there would
    /// abort every sub-transaction.
    pub fn watermark_times(&self, out: &mut ShardTimes) {
        for (s, sum) in self.shards.iter().enumerate() {
            out.t[s] = sum.folded_ts();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use htm_sim::{HeapBuilder, HtmConfig, HtmSystem};

    const HEAP: usize = 1 << 20;

    fn setup(shards: usize, entries: usize) -> (HtmSystem, ShardedRing, ShardedSummary) {
        let sys = HtmSystem::new(HtmConfig::default(), HEAP);
        let mut b = HeapBuilder::new(HEAP);
        let ring = ShardedRing::alloc(&mut b, shards, entries, SigSpec::PAPER);
        let summaries = ring.new_summary();
        (sys, ring, summaries)
    }

    /// An address whose signature bit falls into shard `s` of `ring`, scanning
    /// from `seed` upward.
    fn addr_in_shard(ring: &ShardedRing, s: usize, seed: u32) -> u32 {
        let spec = ring.spec();
        (seed..seed + 1_000_000)
            .find(|&a| ring.shard_of_word(spec.bit_of(a) / 64) == s)
            .expect("an address hashing into the shard exists")
    }

    #[test]
    fn geometry_masks_partition_the_words() {
        for n in [1usize, 2, 4, 8, 16] {
            let sys = HtmSystem::new(HtmConfig::default(), HEAP);
            let mut b = HeapBuilder::new(HEAP);
            let ring = ShardedRing::alloc(&mut b, n, 16, SigSpec::PAPER);
            assert_eq!(ring.shard_count(), n, "PAPER has 32 words; no clamping");
            let mut seen = 0u64;
            let valid = if SigSpec::PAPER.words() >= 64 {
                u64::MAX
            } else {
                (1u64 << SigSpec::PAPER.words()) - 1
            };
            for s in 0..n {
                let m = ring.shard_word_mask(s) & valid;
                assert_ne!(m, 0);
                assert_eq!(seen & m, 0, "shard ranges must be disjoint");
                seen |= m;
            }
            assert_eq!(seen, valid, "shard ranges must cover every word");
            drop(sys);
        }
    }

    #[test]
    fn shard_count_clamps_to_word_count_and_max() {
        let mut b = HeapBuilder::new(HEAP);
        // 512-bit geometry = 8 words: a request for 64 shards clamps to 8.
        let spec = SigSpec::new(512);
        let ring = ShardedRing::alloc(&mut b, 64, 16, spec);
        assert_eq!(ring.shard_count(), 8);
        assert_eq!(ring.words_per_shard(), 1);
        // PAPER (32 words): 64 requested clamps to MAX_RING_SHARDS.
        let ring = ShardedRing::alloc(&mut b, 64, 16, SigSpec::PAPER);
        assert_eq!(ring.shard_count(), MAX_RING_SHARDS);
    }

    #[test]
    fn shard_mask_matches_word_ownership() {
        let (_sys, ring, _) = setup(8, 16);
        let spec = ring.spec();
        let mut sig = Sig::new(spec);
        let a = addr_in_shard(&ring, 2, 10_000);
        let b = addr_in_shard(&ring, 5, 20_000);
        sig.add(a);
        sig.add(b);
        assert_eq!(ring.shard_mask(&sig), (1 << 2) | (1 << 5));
        assert_eq!(ring.shard_mask(&Sig::new(spec)), 0, "empty sig touches nothing");
    }

    #[test]
    fn empty_signature_publish_is_a_no_op() {
        let (sys, ring, summaries) = setup(8, 16);
        let th = sys.thread(0);
        let (mask, _) = ring.publish_software_summarized(&th, &Sig::new(ring.spec()), &summaries);
        assert_eq!(mask, 0);
        for s in 0..ring.shard_count() {
            assert_eq!(ring.shard(s).timestamp_nt(&th), 0);
        }
    }

    #[test]
    fn cross_shard_publish_bumps_only_touched_shards() {
        let (sys, ring, summaries) = setup(8, 16);
        let th = sys.thread(0);
        let mut sig = Sig::new(ring.spec());
        sig.add(addr_in_shard(&ring, 1, 0));
        sig.add(addr_in_shard(&ring, 6, 50_000));
        let (mask, times) = ring.publish_software_summarized(&th, &sig, &summaries);
        assert_eq!(mask, (1 << 1) | (1 << 6));
        for s in 0..ring.shard_count() {
            let expect = if mask & (1 << s) != 0 { 1 } else { 0 };
            assert_eq!(ring.shard(s).timestamp_nt(&th), expect);
            assert_eq!(times.get(s), expect);
        }
    }

    #[test]
    fn validation_detects_conflict_and_advances_untouched_shards() {
        let (sys, ring, summaries) = setup(8, 16);
        let th = sys.thread(0);
        let a = addr_in_shard(&ring, 3, 0);
        let mut wsig = Sig::new(ring.spec());
        wsig.add(a);
        ring.publish_software_summarized(&th, &wsig, &summaries);

        // Conflicting reader (same address): rejected via shard 3's walk.
        let mut times = ShardTimes::new();
        let mut rsig = Sig::new(ring.spec());
        rsig.add(a);
        let v = ring.validate_summarized_nt(&th, &summaries, &rsig, &mut times);
        assert_eq!(v.result, Err(RingValidationError::Invalid));
        assert_ne!(v.walked_shards & (1 << 3), 0);

        // Disjoint reader in another shard: fast pass there, and the untouched
        // shard-3 slot still advances to shard 3's current timestamp.
        let mut times = ShardTimes::new();
        let mut rok = Sig::new(ring.spec());
        rok.add(addr_in_shard(&ring, 0, 0));
        assert!(!rok.intersects(&wsig));
        let v = ring.validate_summarized_nt(&th, &summaries, &rok, &mut times);
        assert_eq!(v.result, Ok(()));
        assert_ne!(v.fast_shards & 1, 0);
        assert_eq!(times.get(3), 1, "untouched shards advance to current ts");
    }

    #[test]
    fn touched_validation_skips_untouched_and_never_advances_clean_shards() {
        let (sys, ring, summaries) = setup(8, 16);
        let th = sys.thread(0);
        let a = addr_in_shard(&ring, 3, 0);
        let mut wsig = Sig::new(ring.spec());
        wsig.add(a);
        ring.publish_software_summarized(&th, &wsig, &summaries);

        // Bit-disjoint reader over shards 3 and 5: both probes are clean even
        // though shard 3 has a published entry in the window; the clean probe
        // advances shard 3 to the fold watermark without walking.
        let mut rsig = Sig::new(ring.spec());
        let b = (1u32..)
            .map(|seed| addr_in_shard(&ring, 3, seed * 10_000))
            .find(|&b| {
                let mut probe = Sig::new(ring.spec());
                probe.add(b);
                !probe.intersects(&wsig)
            })
            .unwrap();
        rsig.add(b);
        rsig.add(addr_in_shard(&ring, 5, 0));
        let mut times = ShardTimes::new();
        let v = ring.validate_touched_nt(&th, &summaries, &rsig, &mut times);
        assert_eq!(v.result, Ok(()));
        assert_eq!(v.walked_shards, 0);
        assert_eq!(v.fast_shards, (1 << 3) | (1 << 5));
        assert_eq!(times.get(3), 1, "clean probe advances to the fold watermark");
        assert_eq!(times.get(5), 0, "nothing folded in shard 5 yet");
        assert_eq!(times.get(0), 0, "untouched shards are skipped outright");

        // Conflicting reader: rejected by shard 3's walk from its begin time.
        let mut rbad = Sig::new(ring.spec());
        rbad.add(a);
        let mut times = ShardTimes::new();
        let v = ring.validate_touched_nt(&th, &summaries, &rbad, &mut times);
        assert_eq!(v.result, Err(RingValidationError::Invalid));
        assert_eq!(v.walked_shards, 1 << 3);

        // The same conflicting signature with a window already at the fold
        // watermark hits the nothing-new early-out: no walk, window stays put.
        let mut times = ShardTimes::new();
        times.set(3, 1);
        let v = ring.validate_touched_nt(&th, &summaries, &rbad, &mut times);
        assert_eq!(v.result, Ok(()));
        assert_eq!(v.walked_shards, 0);
        assert_eq!(
            v.fast_shards,
            1 << 3,
            "at-watermark window fast-passes without probing the Bloom words"
        );
        assert_eq!(times.get(3), 1);
    }

    #[test]
    fn hardware_publish_hand_shake_multi_shard() {
        let (sys, ring, summaries) = setup(8, 16);
        let mut th = sys.thread(0);
        let mut sig = Sig::new(ring.spec());
        let a = addr_in_shard(&ring, 0, 0);
        let b = addr_in_shard(&ring, 7, 70_000);
        sig.add(a);
        sig.add(b);

        let (mask, times) = th
            .attempt(|tx| ring.publish_tx_summarized(tx, &sig, &summaries))
            .unwrap();
        ring.complete_publish(&sig, mask, &times, &summaries);
        assert_eq!(mask, 1 | (1 << 7));
        assert_eq!(times.get(0), 1);
        assert_eq!(times.get(7), 1);
        // Each shard summary holds only its own word range.
        assert!(summaries.shard(0).snapshot().contains(a));
        assert!(!summaries.shard(0).snapshot().contains(b));
        assert!(summaries.shard(7).snapshot().contains(b));
        // Conflicting reader is rejected; disjoint passes.
        let mut times2 = ShardTimes::new();
        let mut rbad = Sig::new(ring.spec());
        rbad.add(b);
        let v = ring.validate_summarized_nt(&th, &summaries, &rbad, &mut times2);
        assert_eq!(v.result, Err(RingValidationError::Invalid));
        let _ = times;
    }

    #[test]
    fn single_shard_matches_plain_ring_timestamps() {
        let (sys, ring, summaries) = setup(1, 16);
        assert_eq!(ring.shard_count(), 1);
        let th = sys.thread(0);
        let mut sig = Sig::new(ring.spec());
        sig.add(123);
        let (mask, times) = ring.publish_software_summarized(&th, &sig, &summaries);
        assert_eq!((mask, times.get(0)), (1, 1));
        // Shard 0 is a whole plain ring: its own API agrees.
        assert_eq!(ring.shard(0).timestamp_nt(&th), 1);
        let mut times = ShardTimes::new();
        let mut rsig = Sig::new(ring.spec());
        rsig.add(123);
        let v = ring.validate_summarized_nt(&th, &summaries, &rsig, &mut times);
        assert_eq!(v.result, Err(RingValidationError::Invalid));
    }

    #[test]
    fn concurrent_cross_shard_publishers_do_not_deadlock() {
        let (sys, ring, summaries) = setup(8, 1024);
        std::thread::scope(|scope| {
            for t in 0..4 {
                let sys = &sys;
                let ring = &ring;
                let summaries = &summaries;
                scope.spawn(move || {
                    let th = sys.thread(t);
                    let mut sig = Sig::new(ring.spec());
                    // Every publisher touches an overlapping pair of shards so
                    // lock ordering is actually exercised.
                    sig.add(addr_in_shard(ring, t % 8, 0));
                    sig.add(addr_in_shard(ring, (t + 1) % 8, 0));
                    for _ in 0..100 {
                        ring.publish_software_summarized(&th, &sig, summaries);
                    }
                });
            }
        });
        // Every publish bumped each touched shard exactly once: total bumps
        // across shards = 400 publishes × 2 shards each.
        let th = sys.thread(0);
        let total: u64 = (0..ring.shard_count())
            .map(|s| ring.shard(s).timestamp_nt(&th))
            .sum();
        assert_eq!(total, 800);
    }

    #[test]
    fn masked_summary_density_reset() {
        // One shard of an 8-shard PAPER ring covers 4 words = 256 bits; a third
        // of that is ~85 bits, far below the full geometry's threshold — the
        // masked live-bit accounting must still trigger the reset.
        let (sys, ring, summaries) = setup(8, 256);
        let th = sys.thread(0);
        let mut sig = Sig::new(ring.spec());
        for i in 0..300u32 {
            sig.clear();
            sig.add(addr_in_shard(&ring, 2, i * 4099));
            ring.publish_software_summarized(&th, &sig, &summaries);
        }
        let resets = ring.maybe_reset_summaries(&th, &summaries);
        assert!(
            resets >= 1,
            "shard 2's masked summary must reach its density threshold"
        );
        assert!(summaries.shard(2).snapshot().is_empty());
    }
}
