//! Address-region sharding of the global ring.
//!
//! PR 2's summary made *validation* cheap, but every software-path commit still
//! serialised on one global ring lock and one global timestamp word — the last
//! global serialisation point of the software framework. [`ShardedRing`] removes
//! it by splitting the ring into `N` independent shards keyed by **signature word
//! range**: with a `W`-word geometry, shard `s` owns signature words
//! `[s·W/N, (s+1)·W/N)`, i.e. the addresses that hash into those words. Each
//! shard is a complete [`Ring`] — its own lock, timestamp and entry buffer — and
//! is paired with its own [`RingSummary`].
//!
//! * **Publishers** touch only the shards their write signature's non-zero-word
//!   mask intersects ([`ShardedRing::shard_mask`]), and each touched shard's
//!   entry stores only the words of that shard's range — so per-shard entries are
//!   *restricted*, not duplicated, and a validator probing word `w` always finds
//!   it in exactly one shard.
//! * **Validators** intersect their read signature against only the touched
//!   shards' summaries, falling back to a per-shard precise walk, and track a
//!   per-shard timestamp vector ([`ShardTimes`]) instead of one start time.
//!
//! Disjoint-region commits proceed with no shared writes at all; the cross-shard
//! serializability argument (why per-shard timestamp windows still admit no real
//! conflict even though a multi-shard publish is not atomic across shards) is
//! spelled out in `docs/ring-sharding.md` and summarised on
//! [`ShardedRing::validate_summarized_nt`].

use std::sync::atomic::{AtomicU64, Ordering::SeqCst};

use htm_sim::abort::TxResult;
use htm_sim::{HeapBuilder, HtmThread, HtmTx};

use crate::align::CacheAligned;
use crate::ring::{
    FastMiss, ResetAttempt, ResetMode, Ring, RingSummary, RingValidationError, SummaryTuning,
};
use crate::sig::Sig;
use crate::spec::SigSpec;

/// Hard upper bound on the shard count; [`ShardTimes`] and the per-shard stats
/// arrays are sized by it. Requests above it are clamped by [`ShardedRing::alloc`].
pub const MAX_RING_SHARDS: usize = 16;

/// Per-shard timestamp vector: the sharded analogue of the single-ring
/// `start_time`. A validator carries one timestamp per shard — the newest commit
/// of that shard its reads are known consistent against — and advances each slot
/// independently as per-shard validations succeed.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ShardTimes {
    t: [u64; MAX_RING_SHARDS],
}

impl ShardTimes {
    /// All-zero vector (the state before any commit).
    pub fn new() -> Self {
        Self::default()
    }

    /// Timestamp recorded for shard `s`.
    #[inline]
    pub fn get(&self, s: usize) -> u64 {
        self.t[s]
    }

    /// Set shard `s`'s timestamp.
    #[inline]
    pub fn set(&mut self, s: usize, ts: u64) {
        self.t[s] = ts;
    }
}

/// Outcome of [`ShardedRing::validate_summarized_nt`]: the overall verdict plus,
/// for the executors' statistics, which touched shards were decided by the
/// summary fast pass and which needed a precise walk.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ShardedValidation {
    /// `Ok(())` when every touched shard validated; otherwise the first per-shard
    /// failure.
    pub result: Result<(), RingValidationError>,
    /// Touched shards decided by the summary fast pass (bit `s` ⇔ shard `s`).
    pub fast_shards: u32,
    /// Touched shards that ran the precise entry walk (bit `s` ⇔ shard `s`).
    pub walked_shards: u32,
    /// Walked shards whose fast-pass miss was [`FastMiss::Dirty`] (summary too
    /// dense / real conflict — the walk decided which).
    pub dirty_shards: u32,
    /// Walked shards whose fast-pass miss was [`FastMiss::Inflight`]
    /// (publisher mid-flight or reset churn; a denser-reset policy would not
    /// have prevented the walk).
    pub inflight_shards: u32,
}

/// Totals of one [`ShardedRing::maybe_reset_summaries`] sweep, split the way
/// the executors' statistics want them.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SummaryResetStats {
    /// Shards whose summary was reset (either protocol).
    pub resets: u64,
    /// Resets that retired an epoch bank (epoch mode only; `<= resets`).
    pub epoch_retires: u64,
    /// Due resets deferred because a validator was pinned to an older epoch
    /// (the grace-period rule; epoch mode only).
    pub pinned_stalls: u64,
}

/// Iterate the set bit positions of a shard mask, ascending.
#[inline]
fn bits(mut mask: u32) -> impl Iterator<Item = usize> {
    std::iter::from_fn(move || {
        if mask == 0 {
            None
        } else {
            let s = mask.trailing_zeros() as usize;
            mask &= mask - 1;
            Some(s)
        }
    })
}

/// The global ring split into word-range shards (see the module docs). Like
/// [`Ring`], this is a plain-old-data heap handle; the host-side atomics live in
/// the companion [`ShardedSummary`].
#[derive(Clone, Debug)]
pub struct ShardedRing {
    shards: Vec<Ring>,
    /// log2(words per shard): shard of word `w` is `w >> shift`.
    shift: u32,
    spec: SigSpec,
}

impl ShardedRing {
    /// Allocate `shard_count` shards (power of two) of `entries_per_shard`
    /// entries each, geometry `spec`. The count is clamped so that every shard
    /// owns at least one signature word and at most [`MAX_RING_SHARDS`] shards
    /// exist; `shard_count == 1` recovers the single global ring exactly (shard 0
    /// is a complete [`Ring`] over the whole geometry).
    pub fn alloc(
        b: &mut HeapBuilder,
        shard_count: usize,
        entries_per_shard: usize,
        spec: SigSpec,
    ) -> Self {
        assert!(
            shard_count >= 1 && shard_count.is_power_of_two(),
            "shard count must be a power of two"
        );
        assert!(spec.words() <= 64, "sharding keys off the non-zero-word mask");
        let words = spec.words() as usize;
        let mut n = shard_count.min(MAX_RING_SHARDS).min(words);
        // Every shard must own the same whole number of words.
        while !words.is_multiple_of(n) {
            n /= 2;
        }
        let shards = (0..n)
            .map(|_| Ring::alloc(b, entries_per_shard, spec))
            .collect();
        Self {
            shards,
            shift: (words / n).trailing_zeros(),
            spec,
        }
    }

    /// Number of shards (after clamping).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Signature geometry.
    pub fn spec(&self) -> SigSpec {
        self.spec
    }

    /// Signature words owned by each shard.
    pub fn words_per_shard(&self) -> u32 {
        1 << self.shift
    }

    /// Shard `s`'s underlying ring. Shard 0 doubles as the workspace's
    /// single-ring view: it is a complete [`Ring`] and the RingSTM baseline
    /// publishes full signatures through its plain API.
    pub fn shard(&self, s: usize) -> &Ring {
        &self.shards[s]
    }

    /// The shard owning signature word `w`.
    #[inline]
    pub fn shard_of_word(&self, w: u32) -> usize {
        (w >> self.shift) as usize
    }

    /// Word mask of shard `s`'s word range (bit `i` set ⇔ shard `s` owns word `i`).
    #[inline]
    pub fn shard_word_mask(&self, s: usize) -> u64 {
        let wps = 1u32 << self.shift;
        if wps >= 64 {
            u64::MAX
        } else {
            ((1u64 << wps) - 1) << (s as u32 * wps)
        }
    }

    /// Shards touched by `sig` (bit `s` ⇔ some non-zero word of `sig` falls in
    /// shard `s`'s range). An empty signature touches nothing.
    pub fn shard_mask(&self, sig: &Sig) -> u32 {
        let mut m = 0u32;
        let mut words = sig.nonzero_mask();
        while words != 0 {
            let s = (words.trailing_zeros() >> self.shift) as usize;
            m |= 1 << s;
            words &= !self.shard_word_mask(s);
        }
        m
    }

    /// Read every shard's timestamp non-transactionally into `out`. Taken at
    /// transaction begin: the vector is the validator's initial window.
    pub fn timestamps_nt(&self, th: &HtmThread<'_>, out: &mut ShardTimes) {
        for (s, ring) in self.shards.iter().enumerate() {
            out.t[s] = ring.timestamp_nt(th);
        }
    }

    /// Compare every shard's timestamp against `times` *inside* a hardware
    /// transaction, subscribing each shard's timestamp line (the sharded analogue
    /// of [`Ring::timestamp_tx`] for Part-HTM-O's sub-HTM begin): any later
    /// commit in any shard dooms the transaction. Returns whether all match; a
    /// `false` return leaves some lines unread, which is fine because the caller
    /// immediately aborts.
    pub fn timestamps_match_tx(
        &self,
        tx: &mut HtmTx<'_, '_>,
        times: &ShardTimes,
    ) -> TxResult<bool> {
        for (s, ring) in self.shards.iter().enumerate() {
            if ring.timestamp_tx(tx)? != times.t[s] {
                return Ok(false);
            }
        }
        Ok(true)
    }

    /// Hardware publish across every shard `write_sig` touches, inside `tx`: per
    /// touched shard (ascending), check the shard lock, bump the shard timestamp
    /// and store the word-range-restricted entry; then announce the publish to
    /// every touched shard's summary as the last body step (past it the
    /// transaction either commits — making all bumps visible atomically, HTM
    /// gives multi-shard hardware publishes the atomicity software ones lack — or
    /// aborts). Returns the touched-shard mask and the per-shard commit
    /// timestamps; the caller must finish the hand-shake with
    /// [`ShardedRing::complete_publish`] on commit (passing the returned mask
    /// *and* timestamps — they feed the fold watermark) or
    /// [`ShardedRing::cancel_publish`] on abort, passing the returned mask.
    pub fn publish_tx_summarized(
        &self,
        tx: &mut HtmTx<'_, '_>,
        write_sig: &Sig,
        summaries: &ShardedSummary,
    ) -> TxResult<(u32, ShardTimes)> {
        let smask = self.shard_mask(write_sig);
        let mut times = ShardTimes::new();
        for s in bits(smask) {
            times.t[s] =
                self.shards[s].publish_tx_masked(tx, write_sig, self.shard_word_mask(s))?;
        }
        // Announce *before* any timestamp store can become visible (they publish
        // at commit, which is after this body step by construction).
        for s in bits(smask) {
            summaries.begin_shard(s);
        }
        Ok((smask, times))
    }

    /// Commit half of the hardware hand-shake: fold `write_sig`'s per-shard word
    /// ranges into every summary in `shard_mask`, recording each shard's commit
    /// timestamp as its fold watermark (`shard_mask` and `times` as returned by
    /// [`ShardedRing::publish_tx_summarized`]).
    pub fn complete_publish(
        &self,
        write_sig: &Sig,
        shard_mask: u32,
        times: &ShardTimes,
        summaries: &ShardedSummary,
    ) {
        for s in bits(shard_mask) {
            summaries.complete_shard(s, write_sig, self.shard_word_mask(s), times.t[s]);
        }
    }

    /// Abort half of the hardware hand-shake: retire the announcement in every
    /// summary in `shard_mask` (no timestamps became visible, nothing to fold).
    pub fn cancel_publish(&self, shard_mask: u32, summaries: &ShardedSummary) {
        for s in bits(shard_mask) {
            summaries.cancel_shard(s);
        }
    }

    /// Software publish across every shard `sig` touches (the partitioned path's
    /// global commit), in three phases:
    ///
    /// 1. acquire the touched shards' ring locks in **ascending shard order** —
    ///    the one global lock order, so multi-shard committers cannot deadlock
    ///    (and each CAS dooms hardware publishers subscribed to that shard);
    /// 2. per touched shard, ascending: reserve the next timestamp, write the
    ///    word-range-restricted entry, announce to the shard summary, bump the
    ///    shard timestamp (entry-before-bump per shard, exactly as in
    ///    [`Ring::publish_software`]) — then release **that shard's lock
    ///    immediately**, before moving to the next shard;
    /// 3. with no locks held, complete the summary hand-shakes.
    ///
    /// Untouched shards (those outside the write signature's non-zero-word mask)
    /// are never locked, bumped or walked at all.
    ///
    /// **Why the early per-shard release keeps the serialisation order:** all
    /// touched locks are still acquired *up front* in phase 1. If commits `A`
    /// and `B` share shards, `B`'s ascending phase 1 blocks at the first shared
    /// shard `A` still holds, and `B` publishes nowhere until phase 1 finishes —
    /// which requires `A` to have bumped-and-released every shared shard,
    /// including the highest one. So at every shared shard `A`'s bump precedes
    /// `B`'s: the same pairwise order as the hold-everything protocol, but each
    /// lock is now held only for its own shard's reserve/write/bump instead of
    /// for the whole multi-shard sweep (the `publish_software_disjoint`
    /// regression in BENCH_3 was exactly this over-long hold). Returns the
    /// touched-shard mask and per-shard commit timestamps.
    pub fn publish_software_summarized(
        &self,
        th: &HtmThread<'_>,
        sig: &Sig,
        summaries: &ShardedSummary,
    ) -> (u32, ShardTimes) {
        let smask = self.shard_mask(sig);
        let mut times = ShardTimes::new();
        for s in bits(smask) {
            let lock = self.shards[s].lock_addr();
            while th.nt_cas(lock, 0, 1).is_err() {
                htm_sim::vclock::yield_now();
            }
        }
        for s in bits(smask) {
            let ring = &self.shards[s];
            let ts = ring.timestamp_nt(th) + 1;
            ring.write_entry_masked_nt(th, ts, sig, self.shard_word_mask(s));
            summaries.begin_shard(s);
            th.nt_write(ring.timestamp_addr(), ts);
            th.nt_write(ring.lock_addr(), 0);
            times.t[s] = ts;
        }
        for s in bits(smask) {
            summaries.complete_shard(s, sig, self.shard_word_mask(s), times.t[s]);
        }
        (smask, times)
    }

    /// Validate `read_sig` against every shard, advancing `times` per shard.
    ///
    /// Touched shards (those `read_sig`'s word mask intersects) go through the
    /// shard summary's fast pass, falling back to that shard's precise entry
    /// walk. Untouched shards cannot hold a conflict — a commit's entry in shard
    /// `s` carries only shard `s`'s word range, and `read_sig` has no bits there
    /// — so their slot is simply advanced to the shard's current timestamp (one
    /// non-transactional read), keeping windows short and Part-HTM-O's
    /// subscription vector exact.
    ///
    /// **Why per-shard windows are sound without cross-shard publish
    /// atomicity:** a conflict on signature word `w` is always witnessed in `w`'s
    /// owning shard, because the writer bumps that shard's timestamp only
    /// *after* its data writes are done (eager writes complete before global
    /// commit) and the validator snapshots that shard's timestamp *before* the
    /// reads it covers. If writer and validator overlap on `w`, the validator's
    /// window in `w`'s shard either contains the writer's entry (detected) or
    /// closed before the writer's bump — in which case the validator's reads all
    /// preceded the writer's writes and no value was missed. Other shards of the
    /// same multi-shard commit need no coordinated window. The full argument is
    /// in `docs/ring-sharding.md`.
    pub fn validate_summarized_nt(
        &self,
        th: &HtmThread<'_>,
        summaries: &ShardedSummary,
        read_sig: &Sig,
        times: &mut ShardTimes,
    ) -> ShardedValidation {
        let smask = self.shard_mask(read_sig);
        let tid = th.id() as usize;
        let mut v = ShardedValidation {
            result: Ok(()),
            fast_shards: 0,
            walked_shards: 0,
            dirty_shards: 0,
            inflight_shards: 0,
        };
        for (s, ring) in self.shards.iter().enumerate() {
            if smask & (1 << s) == 0 {
                times.t[s] = ring.timestamp_nt(th);
                continue;
            }
            match summaries.shards[s].try_fast_pass_at(tid, read_sig, times.t[s], || {
                ring.timestamp_nt(th)
            }) {
                Ok(ts) => {
                    times.t[s] = ts;
                    v.fast_shards |= 1 << s;
                    continue;
                }
                Err(FastMiss::Dirty) => v.dirty_shards |= 1 << s,
                Err(FastMiss::Inflight) => v.inflight_shards |= 1 << s,
            }
            // A failing validation is always decided by the walk (the fast pass
            // only ever says "definitely clean").
            v.walked_shards |= 1 << s;
            match ring.validate_nt(th, read_sig, times.t[s]) {
                Ok(ts) => times.t[s] = ts,
                Err(e) => {
                    v.result = Err(e);
                    return v;
                }
            }
        }
        v
    }

    /// Cheap validation for executors that re-validate from a begin-time
    /// snapshot and do **not** subscribe shard timestamps (Part-HTM; Part-HTM-O
    /// must use [`ShardedRing::validate_summarized_nt`], whose advanced windows
    /// keep its subscription vector convergent).
    ///
    /// Only touched shards are probed, untouched shards are skipped outright —
    /// their `times` slot keeps the begin-time value, which is exactly the
    /// window start validation needs if `read_sig` later grows a bit there.
    ///
    /// In epoch mode the touched shards first run the **combined group fast
    /// pass** (`ShardedSummary::group_pass`): every per-shard decision reads
    /// only the `GroupProbe` block — five small arrays packed into a handful
    /// of cache lines shared by *all* shards — so a no-conflict validation
    /// costs O(1) cache lines however many shards it touches, instead of
    /// walking each shard's own (padded, line-spread) summary atomics. Shards
    /// the group pass cannot decide fall back per shard to
    /// [`RingSummary::clean_since_at`] (which pins the probed epoch and
    /// reports the miss cause) and then to the precise entry walk. A clean
    /// probe never reads the shard timestamp — the window advances to the
    /// fold-completion watermark (a host-side atomic) — so the common
    /// no-conflict case touches no simulated memory at all.
    pub fn validate_touched_nt(
        &self,
        th: &HtmThread<'_>,
        summaries: &ShardedSummary,
        read_sig: &Sig,
        times: &mut ShardTimes,
    ) -> ShardedValidation {
        let smask = self.shard_mask(read_sig);
        let tid = th.id() as usize;
        let mut v = ShardedValidation {
            result: Ok(()),
            fast_shards: 0,
            walked_shards: 0,
            dirty_shards: 0,
            inflight_shards: 0,
        };
        let mut pending = smask;
        if summaries.epoch_mode() {
            for s in bits(smask) {
                let fold = read_sig.fold_word_masked(self.shard_word_mask(s));
                if let Some(adv) = summaries.group_pass(s, fold, times.t[s]) {
                    times.t[s] = times.t[s].max(adv);
                    v.fast_shards |= 1 << s;
                    pending &= !(1 << s);
                }
            }
        }
        for s in bits(pending) {
            match summaries.shards[s].clean_since_at(tid, read_sig, times.t[s]) {
                Ok(adv) => {
                    times.t[s] = times.t[s].max(adv);
                    v.fast_shards |= 1 << s;
                    continue;
                }
                Err(FastMiss::Dirty) => v.dirty_shards |= 1 << s,
                Err(FastMiss::Inflight) => v.inflight_shards |= 1 << s,
            }
            v.walked_shards |= 1 << s;
            match self.shards[s].validate_nt(th, read_sig, times.t[s]) {
                Ok(ts) => times.t[s] = ts,
                Err(e) => {
                    v.result = Err(e);
                    return v;
                }
            }
        }
        v
    }

    /// Run the density check on every shard summary and reset those that want
    /// it (see [`RingSummary::maybe_reset_with`]), threading the shard's
    /// `GroupProbe` maintenance through the reset hooks: before any bits are
    /// dropped the shard's group floor is raised to the `u64::MAX` sentinel and
    /// its probe word zeroed (so no group pass can vouch for a window across
    /// the clear), and after the protocol completes the floor is published as
    /// the new reset timestamp. Both protocols run the hooks — seqlock resets
    /// keep the floors coherent even though only epoch mode consults them.
    pub fn maybe_reset_summaries(
        &self,
        th: &HtmThread<'_>,
        summaries: &ShardedSummary,
    ) -> SummaryResetStats {
        let mut stats = SummaryResetStats::default();
        for (s, ring) in self.shards.iter().enumerate() {
            let sum = &summaries.shards[s];
            let group = &summaries.group;
            match sum.maybe_reset_with(
                || ring.timestamp_nt(th),
                || {
                    group.floor[s].store(u64::MAX, SeqCst);
                    group.probe[s].store(0, SeqCst);
                },
                |ts| group.floor[s].store(ts, SeqCst),
            ) {
                ResetAttempt::Done => {
                    stats.resets += 1;
                    if sum.mode() == ResetMode::Epoch {
                        stats.epoch_retires += 1;
                    }
                }
                ResetAttempt::Deferred => stats.pinned_stalls += 1,
                ResetAttempt::Idle => {}
            }
        }
        stats
    }

    /// Build the matching host-side summary set: one word-range-masked
    /// [`RingSummary`] per shard, geometry kept in sync with this ring, in the
    /// legacy seqlock tuning ([`SummaryTuning::default`]).
    pub fn new_summary(&self) -> ShardedSummary {
        self.new_summary_tuned(SummaryTuning::default())
    }

    /// [`ShardedRing::new_summary`] with explicit [`SummaryTuning`] — the
    /// runtime builds epoch-mode summaries (and controller initial values) from
    /// `TmConfig` through this.
    pub fn new_summary_tuned(&self, tuning: SummaryTuning) -> ShardedSummary {
        ShardedSummary {
            shards: (0..self.shards.len())
                .map(|s| RingSummary::new_masked_tuned(self.spec, self.shard_word_mask(s), tuning))
                .collect(),
            group: GroupProbe::default(),
        }
    }
}

/// The combined multi-shard fast-pass block: five per-shard `u64` arrays packed
/// contiguously so one no-conflict validation across *any* number of shards
/// reads a handful of shared cache lines instead of each shard's own padded
/// summary atomics. Slot `s` of each array mirrors shard `s`'s summary state:
///
/// * `started` / `completed` — the announce/complete counters
///   (publisher-in-flight detection, exactly as on [`RingSummary`]);
/// * `floor` — the group analogue of `reset_ts`: windows starting below it
///   cannot be decided here (raised to the `u64::MAX` sentinel for the
///   duration of a reset's clear, then published as the post-clear timestamp);
/// * `watermark` — the fold-completion watermark (mirror of
///   [`RingSummary::folded_ts`]), the timestamp a clean pass advances to;
/// * `probe` — the shard's summary words **folded to one word** (OR across
///   word positions). A validator folds its read signature's shard range the
///   same way; disjoint folds imply disjoint words (per-word intersection at
///   position `i` survives the OR), so a zero intersection is a sound clean
///   verdict — folding only ever *adds* false positives, which fall back.
///
/// The probe word is not banked: a reset zeroes it in place, and the
/// floor-sentinel protocol (sentinel before zero, re-read after probe) plays
/// the role the epoch re-check plays for the banked words. Bits a straggling
/// publisher ORs in after the zero are false positives, never missed
/// conflicts — its timestamp was visible before the post-clear floor read, so
/// every window the group will vouch for already starts above it.
/// Each array is wrapped in [`CacheAligned`] so it starts on its own cache
/// line (a 16-shard array is exactly two lines): validators sweeping the
/// `probe`/`watermark`/`floor` arrays never false-share with publishers
/// hammering `started`/`completed`, while slots *within* an array stay packed
/// — that contiguity is the point of the block (the const-assertions below pin
/// the layout).
#[derive(Debug, Default)]
struct GroupProbe {
    started: CacheAligned<[AtomicU64; MAX_RING_SHARDS]>,
    completed: CacheAligned<[AtomicU64; MAX_RING_SHARDS]>,
    floor: CacheAligned<[AtomicU64; MAX_RING_SHARDS]>,
    watermark: CacheAligned<[AtomicU64; MAX_RING_SHARDS]>,
    probe: CacheAligned<[AtomicU64; MAX_RING_SHARDS]>,
}

// Five arrays of two lines each, no hidden padding, block starts line-aligned.
const _: () = {
    use std::mem::{align_of, size_of};
    assert!(size_of::<CacheAligned<[AtomicU64; MAX_RING_SHARDS]>>() == 2 * crate::align::CACHE_LINE);
    assert!(size_of::<GroupProbe>() == 5 * 2 * crate::align::CACHE_LINE);
    assert!(align_of::<GroupProbe>() == crate::align::CACHE_LINE);
};

/// Host-side companion to a [`ShardedRing`]: one [`RingSummary`] per shard, each
/// masked to its shard's word range, plus the combined `GroupProbe` block.
/// Built by [`ShardedRing::new_summary`] so the geometry can never drift from
/// the ring's.
#[derive(Debug)]
pub struct ShardedSummary {
    shards: Vec<RingSummary>,
    group: GroupProbe,
}

impl ShardedSummary {
    /// Number of shard summaries.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Shard `s`'s summary.
    pub fn shard(&self, s: usize) -> &RingSummary {
        &self.shards[s]
    }

    /// True when the shard summaries run the epoch-bank protocol (the group
    /// fast pass is consulted only then; seqlock mode keeps PR 3's exact
    /// behaviour as the differential oracle).
    pub fn epoch_mode(&self) -> bool {
        self.shards
            .first()
            .is_some_and(|s| s.mode() == ResetMode::Epoch)
    }

    /// Announce a publish to shard `s`: the group's `started` slot first, then
    /// the shard summary — both strictly before the shard timestamp can become
    /// visible, so either counter imbalance covers an in-flight publisher.
    pub fn begin_shard(&self, s: usize) {
        self.group.started[s].fetch_add(1, SeqCst);
        self.shards[s].begin_publish();
    }

    /// Complete a publish to shard `s`: fold into the shard summary, then
    /// maintain the group block — probe OR first, watermark second, `completed`
    /// last. The order is load-bearing twice over: bits are in the probe word
    /// before the watermark can name the publish (so a validator that read
    /// `watermark >= ts` before the probe is guaranteed to see the bits), and
    /// the watermark covers the publish before the counters can balance (the
    /// empty-window pass relies on it, exactly as
    /// [`RingSummary::complete_publish_masked`] does for `folded_ts`).
    pub fn complete_shard(&self, s: usize, sig: &Sig, word_mask: u64, ts: u64) {
        self.shards[s].complete_publish_masked(sig, word_mask, ts);
        self.group.probe[s].fetch_or(sig.fold_word_masked(word_mask), SeqCst);
        self.group.watermark[s].fetch_max(ts, SeqCst);
        self.group.completed[s].fetch_add(1, SeqCst);
    }

    /// Retire an announced publish to shard `s` whose hardware transaction
    /// aborted (nothing became visible, nothing to fold).
    pub fn cancel_shard(&self, s: usize) {
        self.shards[s].cancel_publish();
        self.group.completed[s].fetch_add(1, SeqCst);
    }

    /// One shard's leg of the combined fast pass: `Some(adv)` when `fold` (the
    /// read signature's shard-`s` word range folded to one word) provably
    /// collides with nothing published in shard `s` after `since`. Touches only
    /// the [`GroupProbe`] block. Read order is load-bearing, mirroring
    /// [`RingSummary::clean_since`]: `completed` first, the floor (reject
    /// windows predating the last clear, including the mid-clear sentinel),
    /// the watermark *before* the probe word (every publish at or below the
    /// watermark OR'd its fold in before the watermark reached it), then the
    /// probe, and finally `started` and the floor again — counter balance
    /// proves no publisher was in flight, floor stability proves no clear
    /// raced the probe.
    fn group_pass(&self, s: usize, fold: u64, since: u64) -> Option<u64> {
        let g = &self.group;
        let c1 = g.completed[s].load(SeqCst);
        let f1 = g.floor[s].load(SeqCst);
        if since < f1 {
            return None;
        }
        let adv = g.watermark[s].load(SeqCst);
        if adv <= since {
            if g.started[s].load(SeqCst) == c1 && g.floor[s].load(SeqCst) == f1 {
                return Some(since);
            }
            return None;
        }
        if fold & g.probe[s].load(SeqCst) != 0 {
            return None;
        }
        if g.started[s].load(SeqCst) != c1 || g.floor[s].load(SeqCst) != f1 {
            return None;
        }
        Some(adv)
    }

    /// Begin-time window snapshot from the fold watermarks alone — zero
    /// simulated-heap accesses, one host atomic load per shard.
    ///
    /// Sound for executors that use the vector purely as validation windows
    /// (Part-HTM's partitioned path): each shard's watermark only ever names
    /// publishes whose writes were visible before the load (see
    /// [`RingSummary::folded_ts`]), and a lagging watermark merely widens the
    /// window. **Not** a substitute for [`ShardedRing::timestamps_nt`] when
    /// the vector must *equal* the live shard timestamps — Part-HTM-O's
    /// sub-HTM begin compares it against the subscribed timestamp lines via
    /// [`ShardedRing::timestamps_match_tx`], and a lagging entry there would
    /// abort every sub-transaction.
    pub fn watermark_times(&self, out: &mut ShardTimes) {
        for (s, sum) in self.shards.iter().enumerate() {
            out.t[s] = sum.folded_ts();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use htm_sim::{HeapBuilder, HtmConfig, HtmSystem};

    const HEAP: usize = 1 << 20;

    fn setup(shards: usize, entries: usize) -> (HtmSystem, ShardedRing, ShardedSummary) {
        let sys = HtmSystem::new(HtmConfig::default(), HEAP);
        let mut b = HeapBuilder::new(HEAP);
        let ring = ShardedRing::alloc(&mut b, shards, entries, SigSpec::PAPER);
        let summaries = ring.new_summary();
        (sys, ring, summaries)
    }

    /// An address whose signature bit falls into shard `s` of `ring`, scanning
    /// from `seed` upward.
    fn addr_in_shard(ring: &ShardedRing, s: usize, seed: u32) -> u32 {
        let spec = ring.spec();
        (seed..seed + 1_000_000)
            .find(|&a| ring.shard_of_word(spec.bit_of(a) / 64) == s)
            .expect("an address hashing into the shard exists")
    }

    #[test]
    fn geometry_masks_partition_the_words() {
        for n in [1usize, 2, 4, 8, 16] {
            let sys = HtmSystem::new(HtmConfig::default(), HEAP);
            let mut b = HeapBuilder::new(HEAP);
            let ring = ShardedRing::alloc(&mut b, n, 16, SigSpec::PAPER);
            assert_eq!(ring.shard_count(), n, "PAPER has 32 words; no clamping");
            let mut seen = 0u64;
            let valid = if SigSpec::PAPER.words() >= 64 {
                u64::MAX
            } else {
                (1u64 << SigSpec::PAPER.words()) - 1
            };
            for s in 0..n {
                let m = ring.shard_word_mask(s) & valid;
                assert_ne!(m, 0);
                assert_eq!(seen & m, 0, "shard ranges must be disjoint");
                seen |= m;
            }
            assert_eq!(seen, valid, "shard ranges must cover every word");
            drop(sys);
        }
    }

    #[test]
    fn shard_count_clamps_to_word_count_and_max() {
        let mut b = HeapBuilder::new(HEAP);
        // 512-bit geometry = 8 words: a request for 64 shards clamps to 8.
        let spec = SigSpec::new(512);
        let ring = ShardedRing::alloc(&mut b, 64, 16, spec);
        assert_eq!(ring.shard_count(), 8);
        assert_eq!(ring.words_per_shard(), 1);
        // PAPER (32 words): 64 requested clamps to MAX_RING_SHARDS.
        let ring = ShardedRing::alloc(&mut b, 64, 16, SigSpec::PAPER);
        assert_eq!(ring.shard_count(), MAX_RING_SHARDS);
    }

    #[test]
    fn shard_mask_matches_word_ownership() {
        let (_sys, ring, _) = setup(8, 16);
        let spec = ring.spec();
        let mut sig = Sig::new(spec);
        let a = addr_in_shard(&ring, 2, 10_000);
        let b = addr_in_shard(&ring, 5, 20_000);
        sig.add(a);
        sig.add(b);
        assert_eq!(ring.shard_mask(&sig), (1 << 2) | (1 << 5));
        assert_eq!(ring.shard_mask(&Sig::new(spec)), 0, "empty sig touches nothing");
    }

    #[test]
    fn empty_signature_publish_is_a_no_op() {
        let (sys, ring, summaries) = setup(8, 16);
        let th = sys.thread(0);
        let (mask, _) = ring.publish_software_summarized(&th, &Sig::new(ring.spec()), &summaries);
        assert_eq!(mask, 0);
        for s in 0..ring.shard_count() {
            assert_eq!(ring.shard(s).timestamp_nt(&th), 0);
        }
    }

    #[test]
    fn cross_shard_publish_bumps_only_touched_shards() {
        let (sys, ring, summaries) = setup(8, 16);
        let th = sys.thread(0);
        let mut sig = Sig::new(ring.spec());
        sig.add(addr_in_shard(&ring, 1, 0));
        sig.add(addr_in_shard(&ring, 6, 50_000));
        let (mask, times) = ring.publish_software_summarized(&th, &sig, &summaries);
        assert_eq!(mask, (1 << 1) | (1 << 6));
        for s in 0..ring.shard_count() {
            let expect = if mask & (1 << s) != 0 { 1 } else { 0 };
            assert_eq!(ring.shard(s).timestamp_nt(&th), expect);
            assert_eq!(times.get(s), expect);
        }
    }

    #[test]
    fn validation_detects_conflict_and_advances_untouched_shards() {
        let (sys, ring, summaries) = setup(8, 16);
        let th = sys.thread(0);
        let a = addr_in_shard(&ring, 3, 0);
        let mut wsig = Sig::new(ring.spec());
        wsig.add(a);
        ring.publish_software_summarized(&th, &wsig, &summaries);

        // Conflicting reader (same address): rejected via shard 3's walk.
        let mut times = ShardTimes::new();
        let mut rsig = Sig::new(ring.spec());
        rsig.add(a);
        let v = ring.validate_summarized_nt(&th, &summaries, &rsig, &mut times);
        assert_eq!(v.result, Err(RingValidationError::Invalid));
        assert_ne!(v.walked_shards & (1 << 3), 0);

        // Disjoint reader in another shard: fast pass there, and the untouched
        // shard-3 slot still advances to shard 3's current timestamp.
        let mut times = ShardTimes::new();
        let mut rok = Sig::new(ring.spec());
        rok.add(addr_in_shard(&ring, 0, 0));
        assert!(!rok.intersects(&wsig));
        let v = ring.validate_summarized_nt(&th, &summaries, &rok, &mut times);
        assert_eq!(v.result, Ok(()));
        assert_ne!(v.fast_shards & 1, 0);
        assert_eq!(times.get(3), 1, "untouched shards advance to current ts");
    }

    #[test]
    fn touched_validation_skips_untouched_and_never_advances_clean_shards() {
        let (sys, ring, summaries) = setup(8, 16);
        let th = sys.thread(0);
        let a = addr_in_shard(&ring, 3, 0);
        let mut wsig = Sig::new(ring.spec());
        wsig.add(a);
        ring.publish_software_summarized(&th, &wsig, &summaries);

        // Bit-disjoint reader over shards 3 and 5: both probes are clean even
        // though shard 3 has a published entry in the window; the clean probe
        // advances shard 3 to the fold watermark without walking.
        let mut rsig = Sig::new(ring.spec());
        let b = (1u32..)
            .map(|seed| addr_in_shard(&ring, 3, seed * 10_000))
            .find(|&b| {
                let mut probe = Sig::new(ring.spec());
                probe.add(b);
                !probe.intersects(&wsig)
            })
            .unwrap();
        rsig.add(b);
        rsig.add(addr_in_shard(&ring, 5, 0));
        let mut times = ShardTimes::new();
        let v = ring.validate_touched_nt(&th, &summaries, &rsig, &mut times);
        assert_eq!(v.result, Ok(()));
        assert_eq!(v.walked_shards, 0);
        assert_eq!(v.fast_shards, (1 << 3) | (1 << 5));
        assert_eq!(times.get(3), 1, "clean probe advances to the fold watermark");
        assert_eq!(times.get(5), 0, "nothing folded in shard 5 yet");
        assert_eq!(times.get(0), 0, "untouched shards are skipped outright");

        // Conflicting reader: rejected by shard 3's walk from its begin time.
        let mut rbad = Sig::new(ring.spec());
        rbad.add(a);
        let mut times = ShardTimes::new();
        let v = ring.validate_touched_nt(&th, &summaries, &rbad, &mut times);
        assert_eq!(v.result, Err(RingValidationError::Invalid));
        assert_eq!(v.walked_shards, 1 << 3);

        // The same conflicting signature with a window already at the fold
        // watermark hits the nothing-new early-out: no walk, window stays put.
        let mut times = ShardTimes::new();
        times.set(3, 1);
        let v = ring.validate_touched_nt(&th, &summaries, &rbad, &mut times);
        assert_eq!(v.result, Ok(()));
        assert_eq!(v.walked_shards, 0);
        assert_eq!(
            v.fast_shards,
            1 << 3,
            "at-watermark window fast-passes without probing the Bloom words"
        );
        assert_eq!(times.get(3), 1);
    }

    #[test]
    fn hardware_publish_hand_shake_multi_shard() {
        let (sys, ring, summaries) = setup(8, 16);
        let mut th = sys.thread(0);
        let mut sig = Sig::new(ring.spec());
        let a = addr_in_shard(&ring, 0, 0);
        let b = addr_in_shard(&ring, 7, 70_000);
        sig.add(a);
        sig.add(b);

        let (mask, times) = th
            .attempt(|tx| ring.publish_tx_summarized(tx, &sig, &summaries))
            .unwrap();
        ring.complete_publish(&sig, mask, &times, &summaries);
        assert_eq!(mask, 1 | (1 << 7));
        assert_eq!(times.get(0), 1);
        assert_eq!(times.get(7), 1);
        // Each shard summary holds only its own word range.
        assert!(summaries.shard(0).snapshot().contains(a));
        assert!(!summaries.shard(0).snapshot().contains(b));
        assert!(summaries.shard(7).snapshot().contains(b));
        // Conflicting reader is rejected; disjoint passes.
        let mut times2 = ShardTimes::new();
        let mut rbad = Sig::new(ring.spec());
        rbad.add(b);
        let v = ring.validate_summarized_nt(&th, &summaries, &rbad, &mut times2);
        assert_eq!(v.result, Err(RingValidationError::Invalid));
        let _ = times;
    }

    #[test]
    fn single_shard_matches_plain_ring_timestamps() {
        let (sys, ring, summaries) = setup(1, 16);
        assert_eq!(ring.shard_count(), 1);
        let th = sys.thread(0);
        let mut sig = Sig::new(ring.spec());
        sig.add(123);
        let (mask, times) = ring.publish_software_summarized(&th, &sig, &summaries);
        assert_eq!((mask, times.get(0)), (1, 1));
        // Shard 0 is a whole plain ring: its own API agrees.
        assert_eq!(ring.shard(0).timestamp_nt(&th), 1);
        let mut times = ShardTimes::new();
        let mut rsig = Sig::new(ring.spec());
        rsig.add(123);
        let v = ring.validate_summarized_nt(&th, &summaries, &rsig, &mut times);
        assert_eq!(v.result, Err(RingValidationError::Invalid));
    }

    #[test]
    fn concurrent_cross_shard_publishers_do_not_deadlock() {
        let (sys, ring, summaries) = setup(8, 1024);
        std::thread::scope(|scope| {
            for t in 0..4 {
                let sys = &sys;
                let ring = &ring;
                let summaries = &summaries;
                scope.spawn(move || {
                    let th = sys.thread(t);
                    let mut sig = Sig::new(ring.spec());
                    // Every publisher touches an overlapping pair of shards so
                    // lock ordering is actually exercised.
                    sig.add(addr_in_shard(ring, t % 8, 0));
                    sig.add(addr_in_shard(ring, (t + 1) % 8, 0));
                    for _ in 0..100 {
                        ring.publish_software_summarized(&th, &sig, summaries);
                    }
                });
            }
        });
        // Every publish bumped each touched shard exactly once: total bumps
        // across shards = 400 publishes × 2 shards each.
        let th = sys.thread(0);
        let total: u64 = (0..ring.shard_count())
            .map(|s| ring.shard(s).timestamp_nt(&th))
            .sum();
        assert_eq!(total, 800);
    }

    #[test]
    fn masked_summary_density_reset() {
        // One shard of an 8-shard PAPER ring covers 4 words = 256 bits; a third
        // of that is ~85 bits, far below the full geometry's threshold — the
        // masked live-bit accounting must still trigger the reset.
        let (sys, ring, summaries) = setup(8, 256);
        let th = sys.thread(0);
        let mut sig = Sig::new(ring.spec());
        for i in 0..300u32 {
            sig.clear();
            sig.add(addr_in_shard(&ring, 2, i * 4099));
            ring.publish_software_summarized(&th, &sig, &summaries);
        }
        let stats = ring.maybe_reset_summaries(&th, &summaries);
        assert!(
            stats.resets >= 1,
            "shard 2's masked summary must reach its density threshold"
        );
        assert_eq!(stats.epoch_retires, 0, "seqlock resets retire no epoch");
        assert!(summaries.shard(2).snapshot().is_empty());
    }

    fn setup_epochs(shards: usize, entries: usize) -> (HtmSystem, ShardedRing, ShardedSummary) {
        let sys = HtmSystem::new(HtmConfig::default(), HEAP);
        let mut b = HeapBuilder::new(HEAP);
        let ring = ShardedRing::alloc(&mut b, shards, entries, SigSpec::PAPER);
        let summaries = ring.new_summary_tuned(SummaryTuning::epochs());
        (sys, ring, summaries)
    }

    #[test]
    fn group_pass_decides_disjoint_epoch_validation() {
        let (sys, ring, summaries) = setup_epochs(8, 16);
        assert!(summaries.epoch_mode());
        let th = sys.thread(0);
        let a = addr_in_shard(&ring, 3, 0);
        let mut wsig = Sig::new(ring.spec());
        wsig.add(a);
        ring.publish_software_summarized(&th, &wsig, &summaries);

        // A same-shard reader whose *folded* word is disjoint from the
        // writer's: decided by the group probe alone (fast, no walk), window
        // advanced to the watermark.
        let wfold = wsig.fold_word_masked(ring.shard_word_mask(3));
        let b = (1u32..)
            .map(|seed| addr_in_shard(&ring, 3, seed * 10_000))
            .find(|&b| {
                let mut probe = Sig::new(ring.spec());
                probe.add(b);
                probe.fold_word_masked(ring.shard_word_mask(3)) & wfold == 0
            })
            .unwrap();
        let mut rsig = Sig::new(ring.spec());
        rsig.add(b);
        rsig.add(addr_in_shard(&ring, 5, 0));
        let mut times = ShardTimes::new();
        let v = ring.validate_touched_nt(&th, &summaries, &rsig, &mut times);
        assert_eq!(v.result, Ok(()));
        assert_eq!(v.walked_shards, 0);
        assert_eq!(v.fast_shards, (1 << 3) | (1 << 5));
        assert_eq!(times.get(3), 1, "group pass advances to the watermark");
        assert_eq!(times.get(5), 0, "empty shard 5 passes without advancing");

        // The conflicting reader folds onto the writer's bits: the group probe
        // declines, the per-shard walk rejects, and the miss is Dirty.
        let mut rbad = Sig::new(ring.spec());
        rbad.add(a);
        let mut times = ShardTimes::new();
        let v = ring.validate_touched_nt(&th, &summaries, &rbad, &mut times);
        assert_eq!(v.result, Err(RingValidationError::Invalid));
        assert_eq!(v.walked_shards, 1 << 3);
        assert_eq!(v.dirty_shards, 1 << 3);
        assert_eq!(v.inflight_shards, 0);
    }

    #[test]
    fn group_pass_declines_while_publisher_in_flight() {
        let (sys, ring, summaries) = setup_epochs(8, 16);
        let th = sys.thread(0);
        // Hand-announce without completing: an in-flight hardware publisher.
        summaries.begin_shard(2);
        let mut rsig = Sig::new(ring.spec());
        rsig.add(addr_in_shard(&ring, 2, 50_000));
        let mut times = ShardTimes::new();
        let v = ring.validate_touched_nt(&th, &summaries, &rsig, &mut times);
        // Counters are imbalanced: neither the group pass nor the per-shard
        // probe may vouch; the walk decides (cleanly — nothing is published).
        assert_eq!(v.result, Ok(()));
        assert_eq!(v.walked_shards, 1 << 2);
        assert_eq!(v.inflight_shards, 1 << 2);
        summaries.cancel_shard(2);
        let mut times = ShardTimes::new();
        let v = ring.validate_touched_nt(&th, &summaries, &rsig, &mut times);
        assert_eq!(v.walked_shards, 0, "balanced counters fast-pass again");
    }

    #[test]
    fn epoch_reset_publishes_group_floor() {
        let (sys, ring, summaries) = setup_epochs(8, 256);
        let th = sys.thread(0);
        let mut sig = Sig::new(ring.spec());
        for i in 0..300u32 {
            sig.clear();
            sig.add(addr_in_shard(&ring, 2, i * 4099));
            ring.publish_software_summarized(&th, &sig, &summaries);
        }
        let before = ring.shard(2).timestamp_nt(&th);
        let stats = ring.maybe_reset_summaries(&th, &summaries);
        assert!(stats.resets >= 1);
        assert!(stats.epoch_retires >= 1, "epoch resets retire a bank");
        assert_eq!(stats.pinned_stalls, 0);
        assert!(summaries.shard(2).snapshot().is_empty());
        // The reset raised shard 2's group floor to the post-clear timestamp:
        // windows from before the reset are no longer decidable by the group…
        let floor = summaries.group.floor[2].load(SeqCst);
        assert_eq!(floor, before);
        let mut rsig = Sig::new(ring.spec());
        rsig.add(addr_in_shard(&ring, 2, 123));
        assert_eq!(summaries.group_pass(2, 1, 0), None, "pre-reset window");
        // …but a window at the floor is, and the probe word is clean again.
        assert_eq!(summaries.group_pass(2, u64::MAX, floor), Some(floor));
        let mut times = ShardTimes::new();
        times.set(2, floor);
        let v = ring.validate_touched_nt(&th, &summaries, &rsig, &mut times);
        assert_eq!(v.result, Ok(()));
        assert_eq!(v.walked_shards, 0);
    }

    #[test]
    fn stale_pin_defers_sharded_reset_and_counts_stall() {
        let (sys, ring, summaries) = setup_epochs(8, 256);
        let th = sys.thread(0);
        let mut sig = Sig::new(ring.spec());
        // Saturate shard 2 past the density threshold.
        for i in 0..300u32 {
            sig.clear();
            sig.add(addr_in_shard(&ring, 2, i * 4099));
            ring.publish_software_summarized(&th, &sig, &summaries);
        }
        // First reset flips shard 2's summary to epoch 1.
        let stats = ring.maybe_reset_summaries(&th, &summaries);
        assert!(stats.epoch_retires >= 1);
        assert_eq!(summaries.shard(2).pin_epoch(0), 1);
        summaries.shard(2).unpin(0);
        // Saturate again, then pin a reader to the *old* epoch 0 (a validator
        // still mid-probe from before the flip): the due reset must defer.
        for i in 0..300u32 {
            sig.clear();
            sig.add(addr_in_shard(&ring, 2, 7 + i * 4099));
            ring.publish_software_summarized(&th, &sig, &summaries);
        }
        summaries.shard(2).pins_for_tests().set(9, 0);
        let stats = ring.maybe_reset_summaries(&th, &summaries);
        assert_eq!(stats.resets, 0);
        assert!(stats.pinned_stalls >= 1, "stale pin defers the reset");
        // Unpin: the next sweep retires the bank.
        summaries.shard(2).pins_for_tests().clear(9);
        let stats = ring.maybe_reset_summaries(&th, &summaries);
        assert!(stats.epoch_retires >= 1);
    }
}
