//! Per-thread epoch pin registry: the grace-period half of the epoch-based
//! summary reset protocol (see `docs/ring-sharding.md`, "Epoch-based resets").
//!
//! A [`crate::RingSummary`] running in epoch mode keeps **two** banks of summary
//! words and flips between them on reset instead of clearing in place under a
//! seqlock. Validators *pin* the epoch they started in by publishing it into
//! their slot of this registry; a resetter retires the inactive bank only when
//! no validator is still pinned to an older epoch ([`EpochRegistry::drained`]).
//! Pinning is advisory for progress, not for soundness — a validator that
//! straddles an epoch flip anyway is caught by its final epoch re-check and
//! falls back to the precise walk — but the drain rule lets resets defer
//! instead of invalidating every long-running reader mid-probe, which is what
//! makes epoch-mode resets stall-free in both directions: validators never spin
//! on a resetter, and a resetter never spins on validators (it simply reports
//! [`crate::ResetAttempt::Deferred`] and lets the next committer retry).
//!
//! Each slot is padded to its own cache line so pin/unpin traffic from
//! different threads never false-shares.

use std::sync::atomic::{AtomicU64, Ordering::SeqCst};

/// Capacity of the registry: one slot per hardware thread id. Matches the
/// simulator's thread-id space (ids are dense from 0).
pub const MAX_EPOCH_THREADS: usize = 64;

/// Slot value meaning "not pinned".
const UNPINNED: u64 = u64::MAX;

/// One pin slot on its own cache line.
#[repr(align(128))]
#[derive(Debug)]
struct PaddedSlot(AtomicU64);

/// The per-summary pin registry: one padded slot per thread id.
#[derive(Debug)]
pub struct EpochRegistry {
    slots: Box<[PaddedSlot]>,
}

impl Default for EpochRegistry {
    fn default() -> Self {
        Self::new()
    }
}

impl EpochRegistry {
    /// An empty registry (every slot unpinned).
    pub fn new() -> Self {
        Self {
            slots: (0..MAX_EPOCH_THREADS)
                .map(|_| PaddedSlot(AtomicU64::new(UNPINNED)))
                .collect(),
        }
    }

    /// Publish thread `tid`'s pinned epoch. Callers re-check the epoch source
    /// after storing (the hazard-pointer handshake): either the resetter's
    /// drain scan sees this pin, or the pinning thread sees the new epoch and
    /// re-pins.
    #[inline]
    pub fn set(&self, tid: usize, epoch: u64) {
        self.slots[tid].0.store(epoch, SeqCst);
    }

    /// Drop thread `tid`'s pin.
    #[inline]
    pub fn clear(&self, tid: usize) {
        self.slots[tid].0.store(UNPINNED, SeqCst);
    }

    /// Thread `tid`'s current pin, if any (tests and diagnostics).
    pub fn pinned(&self, tid: usize) -> Option<u64> {
        match self.slots[tid].0.load(SeqCst) {
            UNPINNED => None,
            e => Some(e),
        }
    }

    /// True when no thread is pinned to an epoch older than `epoch` — the
    /// grace-period condition under which the bank retired by advancing to
    /// `epoch + 1` can be cleared and reused. Pins *at* `epoch` reference the
    /// current bank, which a reset never touches, so they do not block it.
    pub fn drained(&self, epoch: u64) -> bool {
        self.slots.iter().all(|s| {
            let p = s.0.load(SeqCst);
            p == UNPINNED || p >= epoch
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_registry_is_drained() {
        let r = EpochRegistry::new();
        assert!(r.drained(0));
        assert!(r.drained(100));
        assert_eq!(r.pinned(0), None);
    }

    #[test]
    fn stale_pin_blocks_drain_until_cleared() {
        let r = EpochRegistry::new();
        r.set(3, 5);
        assert_eq!(r.pinned(3), Some(5));
        assert!(r.drained(5), "a pin at the current epoch does not block");
        assert!(!r.drained(6), "a pin one epoch back blocks the drain");
        r.set(3, 6);
        assert!(r.drained(6), "re-pinning at the new epoch releases it");
        r.clear(3);
        assert!(r.drained(1000));
        assert_eq!(r.pinned(3), None);
    }

    #[test]
    fn drain_scans_every_slot() {
        let r = EpochRegistry::new();
        r.set(0, 10);
        r.set(MAX_EPOCH_THREADS - 1, 9);
        assert!(!r.drained(10), "the last slot's stale pin must be seen");
        r.clear(MAX_EPOCH_THREADS - 1);
        assert!(r.drained(10));
    }
}
