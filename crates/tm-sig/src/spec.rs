//! Signature geometry and the address-to-bit hash function.

use htm_sim::Addr;

/// Geometry of all signatures in a runtime: number of bits (a power of two, at least
/// one 64-bit word) and the derived word count.
///
/// The paper's configuration is **2048 bits = 4 cache lines, single hash function**
/// (§5.1): large enough that two hardware transactions updating different bits rarely
/// share a cache line, small enough not to blow the HTM capacity budget.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SigSpec {
    bits: u32,
}

impl SigSpec {
    /// The paper's default: 2048 bits (4 cache lines).
    pub const PAPER: SigSpec = SigSpec { bits: 2048 };

    /// Create a spec with `bits` bits. Panics unless `bits` is a power of two >= 64.
    pub fn new(bits: u32) -> Self {
        assert!(
            bits.is_power_of_two() && bits >= 64,
            "signature bits must be a power of two >= 64"
        );
        Self { bits }
    }

    /// Number of bits.
    #[inline]
    pub fn bits(self) -> u32 {
        self.bits
    }

    /// Number of 64-bit words.
    #[inline]
    pub fn words(self) -> u32 {
        self.bits / 64
    }

    /// The single hash function: maps a word address to a bit index.
    ///
    /// Multiplicative (Fibonacci) hashing — consecutive addresses spread across the
    /// filter, so false conflicts come only from genuine collisions, matching the
    /// paper's "the hash function could map more than one address into the same
    /// entry".
    #[inline]
    pub fn bit_of(self, addr: Addr) -> u32 {
        let h = (addr as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        (h >> (64 - self.bits.trailing_zeros())) as u32
    }

    /// Decompose a bit index into (word offset, mask).
    #[inline]
    pub fn word_and_mask(self, bit: u32) -> (u32, u64) {
        (bit / 64, 1u64 << (bit % 64))
    }

    /// Word offset and mask for an address, in one step.
    #[inline]
    pub fn slot_of(self, addr: Addr) -> (u32, u64) {
        self.word_and_mask(self.bit_of(addr))
    }
}

impl Default for SigSpec {
    fn default() -> Self {
        Self::PAPER
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_spec_is_four_cache_lines() {
        let s = SigSpec::PAPER;
        assert_eq!(s.bits(), 2048);
        assert_eq!(s.words(), 32);
        // 32 words x 8 B = 256 B = 4 x 64 B lines.
        assert_eq!(s.words() as usize * 8, 4 * 64);
    }

    #[test]
    fn bit_of_in_range() {
        for &bits in &[64u32, 512, 2048, 8192] {
            let s = SigSpec::new(bits);
            for addr in (0..100_000).step_by(97) {
                assert!(s.bit_of(addr) < bits);
            }
        }
    }

    #[test]
    fn hash_spreads_addresses() {
        let s = SigSpec::PAPER;
        let mut used = std::collections::HashSet::new();
        for addr in 0..2048u32 {
            used.insert(s.bit_of(addr));
        }
        // 2048 addresses into 2048 bits: expect good occupancy (> 55%).
        assert!(used.len() > 1100, "only {} distinct bits", used.len());
    }

    #[test]
    fn deterministic() {
        let s = SigSpec::PAPER;
        assert_eq!(s.bit_of(12345), s.bit_of(12345));
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_pow2() {
        SigSpec::new(100);
    }
}
