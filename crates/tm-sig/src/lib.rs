//! # tm-sig — signature metadata substrate
//!
//! Part-HTM tracks transactional accesses with *cache-aligned Bloom-filter
//! signatures* instead of classical address/value read- and write-sets (§5.1 of the
//! paper): 2048-bit bit-arrays (4 cache lines) with a single hash function. This
//! crate provides:
//!
//! * [`SigSpec`] — geometry (bit count) and the address-to-bit hash;
//! * [`Sig`] — a signature value held in ordinary software memory (used by the
//!   software framework: in-flight validation, lock release);
//! * [`HeapSig`] — a handle to a signature resident in the simulated heap, with
//!   transactional accessors (used *inside* hardware transactions, where signature
//!   updates consume HTM capacity and produce the false-conflict behaviour the paper
//!   analyses) and strongly atomic non-transactional accessors (used by the software
//!   framework);
//! * [`Ring`] — the RingSTM-style global ring of committed write signatures used for
//!   in-flight validation, with both a hardware (in-HTM) and a software publish path,
//!   plus [`RingSummary`] — the host-side summary signature backing the validation
//!   fast path;
//! * [`ShardedRing`] — the ring split into N address-region shards (keyed by
//!   signature word range), each with its own lock, timestamp and summary, so
//!   disjoint-region commits stop serialising on one global word (see
//!   `docs/ring-sharding.md`);
//! * [`SigJournal`] — the word-level undo journal that makes sub-HTM segment retries
//!   allocation- and clone-free;
//! * [`EpochRegistry`] — the per-thread epoch pin registry behind the summary's
//!   stall-free epoch-bank reset protocol ([`ResetMode::Epoch`], see
//!   `docs/ring-sharding.md`, "Epoch-based resets");
//! * [`kernels`] — 4-wide-unrolled `u64` word kernels backing every signature
//!   hot loop, with the original scalar loops compiled-in as differential
//!   oracles; [`CacheAligned`] — the cache-line padding wrapper disciplining
//!   the shared layouts; [`SigArena`] — the per-thread buffer-recycling arena
//!   (see `docs/mem-layout.md`).

#![deny(missing_docs)]

pub mod align;
pub mod arena;
pub mod epoch;
pub mod heap_sig;
pub mod journal;
pub mod kernels;
pub mod ring;
pub mod sharded;
pub mod sig;
pub mod spec;

pub use align::{CacheAligned, CACHE_LINE};
pub use arena::SigArena;
pub use epoch::{EpochRegistry, MAX_EPOCH_THREADS};
pub use heap_sig::HeapSig;
pub use journal::{CloneSaved, SigJournal, SigSlot};
pub use ring::{
    FastMiss, ResetAttempt, ResetMode, Ring, RingSummary, RingValidationError, SummaryTuning,
};
pub use sharded::{
    ShardTimes, ShardedRing, ShardedSummary, ShardedValidation, SummaryResetStats, MAX_RING_SHARDS,
};
pub use sig::Sig;
pub use spec::SigSpec;
