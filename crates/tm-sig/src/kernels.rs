//! Explicitly 4-wide-unrolled word kernels for every signature hot loop.
//!
//! PRs 1–4 made *which* words the hot loops touch sparse; this module cuts the
//! cost *per word*. Each kernel exists twice with an identical slice-level
//! contract:
//!
//! * [`unrolled`] — the production implementation, hand-unrolled four `u64`
//!   lanes at a time (`chunks_exact(4)` + a scalar tail) so the compiler emits
//!   straight-line SIMD-friendly code with one branch per 4 words. Sparse
//!   inputs stay cheap two ways: the bulk kernels *chunk-skip* (a chunk whose
//!   source words OR to zero is passed over without touching the destination
//!   or, for the atomic kernels, issuing a single atomic access), and the
//!   `*_masked` kernels take the signature's non-zero-word mask and cut over
//!   between a mask-guided walk (below half-live words: index only the live
//!   words, as the pre-pass sparse loops did) and the bulk 4-wide walk.
//! * [`scalar`] — the one-word-at-a-time loops the unrolled forms replaced,
//!   kept compiled-in as the differential oracle. Selected at runtime via
//!   [`set_scalar`] (wired to `TmConfig::scalar_kernels`); every dispatch to a
//!   scalar kernel is counted per thread and drained by [`take_scalar_calls`]
//!   into the `scalar_kernel_falls` statistic.
//!
//! Both flavours are *pure word kernels*: they know nothing about signature
//! masks, banks, generations or ring protocol. Callers keep every protocol
//! read/write order exactly as before and only route the per-word arithmetic
//! here — zero protocol changes (the atomic kernels preserve `SeqCst` on every
//! access). Unrolling rules and the full routing map live in
//! `docs/mem-layout.md`.

use std::cell::Cell;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// One cache line of atomic summary-bank storage: eight `u64` words, padded
/// and aligned to exactly one 64-byte line (const-asserted in `align`). The
/// ring summary stores its banks as whole lines so banks never false-share,
/// and the line kernels below walk word `i` at `lines[i / 8][i % 8]`.
pub type BankLine = crate::align::CacheAligned<[AtomicU64; 8]>;

/// When set, the dispatch functions route to the [`scalar`] oracles.
static SCALAR: AtomicBool = AtomicBool::new(false);

thread_local! {
    /// Per-thread count of dispatches that fell to a scalar oracle.
    static SCALAR_CALLS: Cell<u64> = const { Cell::new(0) };
}

/// Select the scalar oracles (`true`) or the unrolled kernels (`false`,
/// the default) for every subsequent dispatch, process-wide. Wired to
/// `TmConfig::scalar_kernels` by the runtime constructor.
pub fn set_scalar(on: bool) {
    SCALAR.store(on, Ordering::Relaxed);
}

/// True when the scalar oracles are selected.
#[inline]
pub fn scalar_mode() -> bool {
    SCALAR.load(Ordering::Relaxed)
}

/// Drain this thread's scalar-dispatch counter (feeds the
/// `scalar_kernel_falls` statistic).
pub fn take_scalar_calls() -> u64 {
    SCALAR_CALLS.with(|c| c.replace(0))
}

#[inline]
fn note_scalar() {
    SCALAR_CALLS.with(|c| c.set(c.get() + 1));
}

/// Whether word `i` participates under `word_mask` (bit `i` for the first 64
/// words; words beyond 64 — folded-geometry siblings — always participate,
/// matching `Sig::fold_word_masked` and `RingSummary::complete_publish_masked`).
#[inline]
fn in_mask(i: usize, word_mask: u64) -> bool {
    i >= 64 || word_mask & (1u64 << i) != 0
}

/// Restrict a non-zero-word mask to the group bits a `len`-word slice can
/// populate (every bit stays relevant at 64+ words, where bit `b` names the
/// folded group `b, b+64, …`). The masked kernels apply this up front so a
/// stray high bit can never index out of bounds.
#[inline]
fn live_bits(mask: u64, len: usize) -> u64 {
    if len >= 64 {
        mask
    } else {
        mask & ((1u64 << len) - 1)
    }
}

/// The one-word-at-a-time reference loops (differential oracles).
pub mod scalar {
    use super::in_mask;
    use std::sync::atomic::{AtomicU64, Ordering::SeqCst};

    /// True iff `a` and `b` share any set bit (`∃i: a[i] & b[i] != 0`).
    pub fn intersect_any(a: &[u64], b: &[u64]) -> bool {
        a.iter().zip(b).any(|(&x, &y)| x & y != 0)
    }

    /// Single-word conflict test: `lock`, less the bits in `skip`, intersects
    /// `mine`.
    #[inline]
    pub fn conflict_word(lock: u64, skip: u64, mine: u64) -> bool {
        (lock & !skip) & mine != 0
    }

    /// `dst[i] |= src[i]` for every word.
    pub fn or_into(dst: &mut [u64], src: &[u64]) {
        for (d, &s) in dst.iter_mut().zip(src) {
            *d |= s;
        }
    }

    /// `dst[i] &= !src[i]` for every word; returns the OR of the resulting
    /// words (zero iff `dst` came out empty).
    pub fn and_not_into(dst: &mut [u64], src: &[u64]) -> u64 {
        let mut any = 0u64;
        for (d, &s) in dst.iter_mut().zip(src) {
            *d &= !s;
            any |= *d;
        }
        any
    }

    /// OR-fold of the words selected by `word_mask` (the test-under-mask
    /// kernel backing `Sig::fold_word_masked`).
    pub fn fold_masked(words: &[u64], word_mask: u64) -> u64 {
        let mut acc = 0u64;
        for (i, &w) in words.iter().enumerate() {
            if in_mask(i, word_mask) {
                acc |= w;
            }
        }
        acc
    }

    /// [`fold_masked`] guided by the signature's non-zero-word mask: only the
    /// word groups named by `sig_mask` are visited (the per-shard fold
    /// `validate_touched_nt` issues once per touched shard). `sig_mask` must
    /// cover every non-zero word; folding a zero sibling is a no-op, so the
    /// group walk needs no per-word test. As in [`fold_masked`], `word_mask`
    /// only filters words below index 64 — folded-geometry siblings always
    /// participate.
    pub fn fold_live(words: &[u64], word_mask: u64, sig_mask: u64) -> u64 {
        let n = words.len();
        let mut m = super::live_bits(sig_mask, n);
        let mut acc = 0u64;
        while m != 0 {
            let b = m.trailing_zeros() as usize;
            m &= m - 1;
            if word_mask & (1u64 << b) != 0 {
                acc |= words[b];
            }
            let mut i = b + 64;
            while i < n {
                acc |= words[i];
                i += 64;
            }
        }
        acc
    }

    /// Recompute the non-zero-word mask (bit `i % 64` set iff some word `i`
    /// congruent to it is non-zero).
    pub fn mask_of(words: &[u64]) -> u64 {
        let mut m = 0u64;
        for (i, &w) in words.iter().enumerate() {
            if w != 0 {
                m |= 1u64 << (i % 64);
            }
        }
        m
    }

    /// Total set bits across the slice (the summary density popcount).
    pub fn popcount(words: &[u64]) -> u64 {
        words.iter().map(|w| w.count_ones() as u64).sum()
    }

    /// True iff `sig` intersects the atomic `bank` words (`SeqCst` loads; a
    /// bank word is only loaded when the matching `sig` word is non-zero —
    /// the summary probe).
    pub fn probe_intersects(bank: &[AtomicU64], sig: &[u64]) -> bool {
        for (b, &s) in bank.iter().zip(sig) {
            if s != 0 && b.load(SeqCst) & s != 0 {
                return true;
            }
        }
        false
    }

    /// OR `sig`'s non-zero words under `word_mask` into the atomic `bank`
    /// (`SeqCst` RMWs; zero or masked-out words issue no atomic access — the
    /// summary fold).
    pub fn fold_or(bank: &[AtomicU64], sig: &[u64], word_mask: u64) {
        for (i, (b, &s)) in bank.iter().zip(sig).enumerate() {
            if s != 0 && in_mask(i, word_mask) {
                b.fetch_or(s, SeqCst);
            }
        }
    }

    /// Total set bits across the atomic `bank` (`SeqCst` loads).
    pub fn popcount_atomic(bank: &[AtomicU64]) -> u64 {
        bank.iter().map(|w| w.load(SeqCst).count_ones() as u64).sum()
    }

    /// [`or_into`] guided by the source's non-zero-word mask: only the word
    /// groups named by `src_mask` are visited (bit `b` covers words `b`,
    /// `b + 64`, …). `src_mask` must cover every non-zero `src` word — the
    /// `Sig` mask invariant — so the result equals the unguided kernel's.
    pub fn or_into_masked(dst: &mut [u64], src: &[u64], src_mask: u64) {
        let n = dst.len().min(src.len());
        let mut m = super::live_bits(src_mask, n);
        while m != 0 {
            let b = m.trailing_zeros() as usize;
            m &= m - 1;
            let mut i = b;
            while i < n {
                dst[i] |= src[i];
                i += 64;
            }
        }
    }

    /// `dst &= !src` over the word groups named by `shared_mask`; returns the
    /// bits of `shared_mask` whose whole group came out zero, so the caller
    /// clears exactly those bits from its maintained mask. `shared_mask` must
    /// cover every word index where *both* operands are non-zero.
    pub fn and_not_masked(dst: &mut [u64], src: &[u64], shared_mask: u64) -> u64 {
        let n = dst.len().min(src.len());
        let mut emptied = 0u64;
        let mut m = super::live_bits(shared_mask, n);
        while m != 0 {
            let b = m.trailing_zeros() as usize;
            m &= m - 1;
            let mut any = false;
            let mut i = b;
            while i < n {
                dst[i] &= !src[i];
                any |= dst[i] != 0;
                i += 64;
            }
            if !any {
                emptied |= 1u64 << b;
            }
        }
        emptied
    }

    /// [`intersect_any`] guided by the operands' shared non-zero-word mask:
    /// only groups live in *both* signatures are read. `shared_mask` must
    /// cover every word index where both operands are non-zero.
    pub fn intersect_any_masked(a: &[u64], b: &[u64], shared_mask: u64) -> bool {
        let n = a.len().min(b.len());
        let mut m = super::live_bits(shared_mask, n);
        while m != 0 {
            let bit = m.trailing_zeros() as usize;
            m &= m - 1;
            let mut i = bit;
            while i < n {
                if a[i] & b[i] != 0 {
                    return true;
                }
                i += 64;
            }
        }
        false
    }

    /// [`probe_intersects`] over line-chunked bank storage (word `i` at
    /// `lines[i / 8][i % 8]`).
    pub fn probe_lines(lines: &[super::BankLine], sig: &[u64]) -> bool {
        for (i, &s) in sig.iter().enumerate() {
            if s != 0 && lines[i / 8].0[i % 8].load(SeqCst) & s != 0 {
                return true;
            }
        }
        false
    }

    /// [`probe_lines`] guided by the probing signature's non-zero-word mask:
    /// only groups named by `sig_mask` are walked, and a bank word is only
    /// loaded when the matching `sig` word is non-zero (the pre-pass summary
    /// probe). `sig_mask` must cover every non-zero `sig` word.
    pub fn probe_lines_masked(lines: &[super::BankLine], sig: &[u64], sig_mask: u64) -> bool {
        let n = sig.len();
        let mut m = super::live_bits(sig_mask, n);
        while m != 0 {
            let b = m.trailing_zeros() as usize;
            m &= m - 1;
            let mut i = b;
            while i < n {
                if sig[i] != 0 && lines[i / 8].0[i % 8].load(SeqCst) & sig[i] != 0 {
                    return true;
                }
                i += 64;
            }
        }
        false
    }

    /// [`fold_or`] over line-chunked bank storage.
    pub fn fold_or_lines(lines: &[super::BankLine], sig: &[u64], word_mask: u64) {
        for (i, &s) in sig.iter().enumerate() {
            if s != 0 && in_mask(i, word_mask) {
                lines[i / 8].0[i % 8].fetch_or(s, SeqCst);
            }
        }
    }

    /// [`popcount_atomic`] over the first `nwords` words of line-chunked bank
    /// storage.
    pub fn popcount_lines(lines: &[super::BankLine], nwords: usize) -> u64 {
        (0..nwords)
            .map(|i| lines[i / 8].0[i % 8].load(SeqCst).count_ones() as u64)
            .sum()
    }
}

/// The 4-wide-unrolled production kernels. Same contracts as [`scalar`].
pub mod unrolled {
    use super::in_mask;
    use std::sync::atomic::{AtomicU64, Ordering::SeqCst};

    /// Single-word conflict test — one word has no unroll axis; kept in both
    /// flavours so the dispatch accounting covers the transactional
    /// validation loops (whose lock reads subscribe HTM lines, forbidding the
    /// slice-batching the other kernels use).
    #[inline]
    pub fn conflict_word(lock: u64, skip: u64, mine: u64) -> bool {
        (lock & !skip) & mine != 0
    }

    /// True iff `a` and `b` share any set bit.
    pub fn intersect_any(a: &[u64], b: &[u64]) -> bool {
        let n = a.len().min(b.len());
        let (ac, at) = a[..n].split_at(n & !3);
        let (bc, bt) = b[..n].split_at(n & !3);
        for (x, y) in ac.chunks_exact(4).zip(bc.chunks_exact(4)) {
            if (x[0] & y[0]) | (x[1] & y[1]) | (x[2] & y[2]) | (x[3] & y[3]) != 0 {
                return true;
            }
        }
        at.iter().zip(bt).any(|(&x, &y)| x & y != 0)
    }

    /// `dst[i] |= src[i]` for every word, four lanes at a time. Chunks whose
    /// source words are all zero never touch `dst`.
    pub fn or_into(dst: &mut [u64], src: &[u64]) {
        let n = dst.len().min(src.len());
        let (dc, dt) = dst[..n].split_at_mut(n & !3);
        let (sc, st) = src[..n].split_at(n & !3);
        for (d, s) in dc.chunks_exact_mut(4).zip(sc.chunks_exact(4)) {
            if s[0] | s[1] | s[2] | s[3] == 0 {
                continue;
            }
            d[0] |= s[0];
            d[1] |= s[1];
            d[2] |= s[2];
            d[3] |= s[3];
        }
        for (d, &s) in dt.iter_mut().zip(st) {
            *d |= s;
        }
    }

    /// `dst[i] &= !src[i]`; returns the OR of the resulting words. Chunks with
    /// no source bits still fold `dst` into the emptiness accumulator (the
    /// return value covers the whole slice, exactly as the scalar oracle's).
    pub fn and_not_into(dst: &mut [u64], src: &[u64]) -> u64 {
        let n = dst.len().min(src.len());
        let (dc, dt) = dst[..n].split_at_mut(n & !3);
        let (sc, st) = src[..n].split_at(n & !3);
        let mut any = 0u64;
        for (d, s) in dc.chunks_exact_mut(4).zip(sc.chunks_exact(4)) {
            if s[0] | s[1] | s[2] | s[3] != 0 {
                d[0] &= !s[0];
                d[1] &= !s[1];
                d[2] &= !s[2];
                d[3] &= !s[3];
            }
            any |= d[0] | d[1] | d[2] | d[3];
        }
        for (d, &s) in dt.iter_mut().zip(st) {
            *d &= !s;
            any |= *d;
        }
        any
    }

    /// OR-fold of the words selected by `word_mask`, four lanes at a time.
    /// The mask test vanishes for the common `u64::MAX` (unmasked) case.
    pub fn fold_masked(words: &[u64], word_mask: u64) -> u64 {
        if word_mask == u64::MAX {
            let (c, t) = words.split_at(words.len() & !3);
            let mut acc = 0u64;
            for w in c.chunks_exact(4) {
                acc |= w[0] | w[1] | w[2] | w[3];
            }
            return t.iter().fold(acc, |a, &w| a | w);
        }
        let mut acc = 0u64;
        for (i, &w) in words.iter().enumerate() {
            if in_mask(i, word_mask) {
                acc |= w;
            }
        }
        acc
    }

    /// [`fold_masked`] guided by the signature's non-zero-word mask (see the
    /// scalar oracle for the contract). Dense signatures take the bulk
    /// [`fold_masked`] walk; sparse ones visit only the live words.
    pub fn fold_live(words: &[u64], word_mask: u64, sig_mask: u64) -> u64 {
        let n = words.len();
        let m = super::live_bits(sig_mask, n);
        if n > 64 || mask_is_dense(m, n) {
            return fold_masked(words, word_mask);
        }
        let mut m = m;
        let mut acc = 0u64;
        while m != 0 {
            let b = m.trailing_zeros() as usize;
            m &= m - 1;
            if word_mask & (1u64 << b) != 0 {
                acc |= words[b];
            }
        }
        acc
    }

    /// Recompute the non-zero-word mask, four lanes at a time. Word `i`
    /// contributes bit `i % 64`; for the practical geometries (≤ 64 words) the
    /// chunk base is the bit base and the four lane bits are consecutive.
    pub fn mask_of(words: &[u64]) -> u64 {
        let (c, t) = words.split_at(words.len() & !3);
        let mut m = 0u64;
        for (ci, w) in c.chunks_exact(4).enumerate() {
            if w[0] | w[1] | w[2] | w[3] == 0 {
                continue;
            }
            let base = ci * 4;
            m |= ((w[0] != 0) as u64) << (base % 64)
                | ((w[1] != 0) as u64) << ((base + 1) % 64)
                | ((w[2] != 0) as u64) << ((base + 2) % 64)
                | ((w[3] != 0) as u64) << ((base + 3) % 64);
        }
        let base = c.len();
        for (i, &w) in t.iter().enumerate() {
            if w != 0 {
                m |= 1u64 << ((base + i) % 64);
            }
        }
        m
    }

    /// Total set bits across the slice, four popcounts per iteration.
    pub fn popcount(words: &[u64]) -> u64 {
        let (c, t) = words.split_at(words.len() & !3);
        let mut n = 0u64;
        for w in c.chunks_exact(4) {
            n += (w[0].count_ones()
                + w[1].count_ones()
                + w[2].count_ones()
                + w[3].count_ones()) as u64;
        }
        n + t.iter().map(|w| w.count_ones() as u64).sum::<u64>()
    }

    /// True iff `sig` intersects the atomic `bank` words. A chunk whose four
    /// `sig` words OR to zero is skipped without a single atomic load; inside
    /// a live chunk only the non-zero lanes load their bank word, so the
    /// atomic-access pattern is exactly the scalar oracle's.
    pub fn probe_intersects(bank: &[AtomicU64], sig: &[u64]) -> bool {
        let n = bank.len().min(sig.len());
        let (sc, st) = sig[..n].split_at(n & !3);
        let (bc, bt) = bank[..n].split_at(n & !3);
        for (s, b) in sc.chunks_exact(4).zip(bc.chunks_exact(4)) {
            if s[0] | s[1] | s[2] | s[3] == 0 {
                continue;
            }
            for lane in 0..4 {
                if s[lane] != 0 && b[lane].load(SeqCst) & s[lane] != 0 {
                    return true;
                }
            }
        }
        for (b, &s) in bt.iter().zip(st) {
            if s != 0 && b.load(SeqCst) & s != 0 {
                return true;
            }
        }
        false
    }

    /// OR `sig`'s non-zero words under `word_mask` into the atomic `bank`.
    /// Chunk-skipping as in [`probe_intersects`]; the atomic-RMW pattern is
    /// exactly the scalar oracle's.
    pub fn fold_or(bank: &[AtomicU64], sig: &[u64], word_mask: u64) {
        let n = bank.len().min(sig.len());
        let (sc, st) = sig[..n].split_at(n & !3);
        let (bc, bt) = bank[..n].split_at(n & !3);
        for (ci, (s, b)) in sc.chunks_exact(4).zip(bc.chunks_exact(4)).enumerate() {
            if s[0] | s[1] | s[2] | s[3] == 0 {
                continue;
            }
            let base = ci * 4;
            for lane in 0..4 {
                if s[lane] != 0 && in_mask(base + lane, word_mask) {
                    b[lane].fetch_or(s[lane], SeqCst);
                }
            }
        }
        let base = sc.len();
        for (i, (b, &s)) in bt.iter().zip(st).enumerate() {
            if s != 0 && in_mask(base + i, word_mask) {
                b.fetch_or(s, SeqCst);
            }
        }
    }

    /// Total set bits across the atomic `bank`, four loads per iteration.
    pub fn popcount_atomic(bank: &[AtomicU64]) -> u64 {
        let (c, t) = bank.split_at(bank.len() & !3);
        let mut n = 0u64;
        for w in c.chunks_exact(4) {
            n += (w[0].load(SeqCst).count_ones()
                + w[1].load(SeqCst).count_ones()
                + w[2].load(SeqCst).count_ones()
                + w[3].load(SeqCst).count_ones()) as u64;
        }
        n + t.iter().map(|w| w.load(SeqCst).count_ones() as u64).sum::<u64>()
    }

    /// Density cutover for the masked kernels: at half-live words and above
    /// the 4-wide bulk walk wins (one branch per chunk, straight-line lanes);
    /// below it the mask-guided walk touches only live words — the membench
    /// `or_sparse`/`and_not_sparse` rows are exactly the regime this guards.
    #[inline]
    fn mask_is_dense(live: u64, len: usize) -> bool {
        2 * live.count_ones() as usize >= len
    }

    /// [`or_into`][super::scalar::or_into_masked] guided by the source's
    /// non-zero-word mask. Dense sources (and folded geometries, where a mask
    /// bit names a whole word group) take the bulk 4-wide walk; sparse
    /// sources index only the live words. Same contract as the scalar
    /// oracle: `src_mask` must cover every non-zero `src` word.
    pub fn or_into_masked(dst: &mut [u64], src: &[u64], src_mask: u64) {
        let n = dst.len().min(src.len());
        let m = super::live_bits(src_mask, n);
        if n > 64 || mask_is_dense(m, n) {
            return or_into(dst, src);
        }
        let mut m = m;
        while m != 0 {
            let b = m.trailing_zeros() as usize;
            m &= m - 1;
            dst[b] |= src[b];
        }
    }

    /// [`and_not_masked`][super::scalar::and_not_masked]: `dst &= !src` over
    /// the groups named by `shared_mask`, returning the mask bits whose group
    /// came out zero. Dense operands take the 4-wide walk (computing per-lane
    /// emptiness as it goes); sparse operands — the common write-lock release
    /// of a few-word write set — touch only the shared words. `shared_mask`
    /// must cover every word index where both operands are non-zero.
    pub fn and_not_masked(dst: &mut [u64], src: &[u64], shared_mask: u64) -> u64 {
        let n = dst.len().min(src.len());
        let m = super::live_bits(shared_mask, n);
        if n > 64 {
            // A mask bit names a folded word group here; walk groups exactly
            // as the scalar oracle (no unroll axis across a 64-word stride).
            let mut emptied = 0u64;
            let mut mm = m;
            while mm != 0 {
                let b = mm.trailing_zeros() as usize;
                mm &= mm - 1;
                let mut any = false;
                let mut i = b;
                while i < n {
                    dst[i] &= !src[i];
                    any |= dst[i] != 0;
                    i += 64;
                }
                if !any {
                    emptied |= 1u64 << b;
                }
            }
            return emptied;
        }
        if mask_is_dense(m, n) {
            let (dc, dt) = dst[..n].split_at_mut(n & !3);
            let (sc, st) = src[..n].split_at(n & !3);
            let mut zero = 0u64;
            for (ci, (d, s)) in dc.chunks_exact_mut(4).zip(sc.chunks_exact(4)).enumerate() {
                if s[0] | s[1] | s[2] | s[3] != 0 {
                    d[0] &= !s[0];
                    d[1] &= !s[1];
                    d[2] &= !s[2];
                    d[3] &= !s[3];
                }
                let base = ci * 4;
                zero |= ((d[0] == 0) as u64) << base
                    | ((d[1] == 0) as u64) << (base + 1)
                    | ((d[2] == 0) as u64) << (base + 2)
                    | ((d[3] == 0) as u64) << (base + 3);
            }
            let base = dc.len();
            for (j, (d, &s)) in dt.iter_mut().zip(st).enumerate() {
                *d &= !s;
                zero |= ((*d == 0) as u64) << (base + j);
            }
            return m & zero;
        }
        let mut emptied = 0u64;
        let mut mm = m;
        while mm != 0 {
            let b = mm.trailing_zeros() as usize;
            mm &= mm - 1;
            dst[b] &= !src[b];
            if dst[b] == 0 {
                emptied |= 1u64 << b;
            }
        }
        emptied
    }

    /// [`intersect_any`][super::scalar::intersect_any_masked] guided by the
    /// operands' shared non-zero-word mask: the common few-bits-vs-few-bits
    /// conflict test reads a word or two; dense pairs take the 4-wide bulk
    /// test. `shared_mask` must cover every word index where both operands
    /// are non-zero.
    pub fn intersect_any_masked(a: &[u64], b: &[u64], shared_mask: u64) -> bool {
        let n = a.len().min(b.len());
        let m = super::live_bits(shared_mask, n);
        if n > 64 || mask_is_dense(m, n) {
            return intersect_any(a, b);
        }
        let mut m = m;
        while m != 0 {
            let bit = m.trailing_zeros() as usize;
            m &= m - 1;
            if a[bit] & b[bit] != 0 {
                return true;
            }
        }
        false
    }

    /// [`probe_lines`][super::scalar::probe_lines_masked] guided by the
    /// probing signature's non-zero-word mask: a sparse read signature loads
    /// exactly its live bank words; dense ones take the line walk. The
    /// atomic-access pattern (load only where the `sig` word is non-zero,
    /// `SeqCst`) is the scalar oracle's. `sig_mask` must cover every
    /// non-zero `sig` word.
    pub fn probe_lines_masked(lines: &[super::BankLine], sig: &[u64], sig_mask: u64) -> bool {
        let n = sig.len();
        let m = super::live_bits(sig_mask, n);
        if n > 64 || mask_is_dense(m, n) {
            return probe_lines(lines, sig);
        }
        let mut m = m;
        while m != 0 {
            let b = m.trailing_zeros() as usize;
            m &= m - 1;
            if sig[b] != 0 && lines[b / 8].0[b % 8].load(SeqCst) & sig[b] != 0 {
                return true;
            }
        }
        false
    }

    /// [`probe_intersects`] over line-chunked bank storage. A 4-chunk of `sig`
    /// never straddles a line (4 divides 8), so each live chunk touches exactly
    /// one `BankLine`; chunks whose `sig` words OR to zero skip it entirely.
    pub fn probe_lines(lines: &[super::BankLine], sig: &[u64]) -> bool {
        let (sc, st) = sig.split_at(sig.len() & !3);
        for (ci, s) in sc.chunks_exact(4).enumerate() {
            if s[0] | s[1] | s[2] | s[3] == 0 {
                continue;
            }
            let base = ci * 4;
            let lane = &lines[base / 8].0;
            let off = base % 8;
            for k in 0..4 {
                if s[k] != 0 && lane[off + k].load(SeqCst) & s[k] != 0 {
                    return true;
                }
            }
        }
        let base = sc.len();
        for (j, &s) in st.iter().enumerate() {
            let i = base + j;
            if s != 0 && lines[i / 8].0[i % 8].load(SeqCst) & s != 0 {
                return true;
            }
        }
        false
    }

    /// [`fold_or`] over line-chunked bank storage, with the same chunk-skip and
    /// the scalar oracle's exact atomic-RMW set.
    pub fn fold_or_lines(lines: &[super::BankLine], sig: &[u64], word_mask: u64) {
        let (sc, st) = sig.split_at(sig.len() & !3);
        for (ci, s) in sc.chunks_exact(4).enumerate() {
            if s[0] | s[1] | s[2] | s[3] == 0 {
                continue;
            }
            let base = ci * 4;
            let lane = &lines[base / 8].0;
            let off = base % 8;
            for k in 0..4 {
                if s[k] != 0 && in_mask(base + k, word_mask) {
                    lane[off + k].fetch_or(s[k], SeqCst);
                }
            }
        }
        let base = sc.len();
        for (j, &s) in st.iter().enumerate() {
            let i = base + j;
            if s != 0 && in_mask(i, word_mask) {
                lines[i / 8].0[i % 8].fetch_or(s, SeqCst);
            }
        }
    }

    /// [`popcount_atomic`] over the first `nwords` words of line-chunked bank
    /// storage, one whole line (eight loads) per iteration.
    pub fn popcount_lines(lines: &[super::BankLine], nwords: usize) -> u64 {
        let mut n = 0u64;
        let whole = nwords / 8;
        for line in &lines[..whole] {
            let w = &line.0;
            n += (w[0].load(SeqCst).count_ones()
                + w[1].load(SeqCst).count_ones()
                + w[2].load(SeqCst).count_ones()
                + w[3].load(SeqCst).count_ones()
                + w[4].load(SeqCst).count_ones()
                + w[5].load(SeqCst).count_ones()
                + w[6].load(SeqCst).count_ones()
                + w[7].load(SeqCst).count_ones()) as u64;
        }
        for i in whole * 8..nwords {
            n += lines[i / 8].0[i % 8].load(SeqCst).count_ones() as u64;
        }
        n
    }
}

macro_rules! dispatch {
    ($name:ident($($arg:expr),*)) => {
        if scalar_mode() {
            note_scalar();
            scalar::$name($($arg),*)
        } else {
            unrolled::$name($($arg),*)
        }
    };
}

/// Dispatching [`unrolled::conflict_word`] / [`scalar::conflict_word`].
#[inline]
pub fn conflict_word(lock: u64, skip: u64, mine: u64) -> bool {
    dispatch!(conflict_word(lock, skip, mine))
}

/// Dispatching [`unrolled::intersect_any`] / [`scalar::intersect_any`].
#[inline]
pub fn intersect_any(a: &[u64], b: &[u64]) -> bool {
    dispatch!(intersect_any(a, b))
}

/// Dispatching [`unrolled::or_into`] / [`scalar::or_into`].
#[inline]
pub fn or_into(dst: &mut [u64], src: &[u64]) {
    dispatch!(or_into(dst, src))
}

/// Dispatching [`unrolled::and_not_into`] / [`scalar::and_not_into`].
#[inline]
pub fn and_not_into(dst: &mut [u64], src: &[u64]) -> u64 {
    dispatch!(and_not_into(dst, src))
}

/// Dispatching [`unrolled::or_into_masked`] / [`scalar::or_into_masked`].
#[inline]
pub fn or_into_masked(dst: &mut [u64], src: &[u64], src_mask: u64) {
    dispatch!(or_into_masked(dst, src, src_mask))
}

/// Dispatching [`unrolled::and_not_masked`] / [`scalar::and_not_masked`].
#[inline]
pub fn and_not_masked(dst: &mut [u64], src: &[u64], shared_mask: u64) -> u64 {
    dispatch!(and_not_masked(dst, src, shared_mask))
}

/// Dispatching [`unrolled::intersect_any_masked`] /
/// [`scalar::intersect_any_masked`].
#[inline]
pub fn intersect_any_masked(a: &[u64], b: &[u64], shared_mask: u64) -> bool {
    dispatch!(intersect_any_masked(a, b, shared_mask))
}

/// Dispatching [`unrolled::probe_lines_masked`] /
/// [`scalar::probe_lines_masked`].
#[inline]
pub fn probe_lines_masked(lines: &[BankLine], sig: &[u64], sig_mask: u64) -> bool {
    dispatch!(probe_lines_masked(lines, sig, sig_mask))
}

/// Dispatching [`unrolled::fold_masked`] / [`scalar::fold_masked`].
#[inline]
pub fn fold_masked(words: &[u64], word_mask: u64) -> u64 {
    dispatch!(fold_masked(words, word_mask))
}

/// Dispatching [`unrolled::fold_live`] / [`scalar::fold_live`].
#[inline]
pub fn fold_live(words: &[u64], word_mask: u64, sig_mask: u64) -> u64 {
    dispatch!(fold_live(words, word_mask, sig_mask))
}

/// Dispatching [`unrolled::mask_of`] / [`scalar::mask_of`].
#[inline]
pub fn mask_of(words: &[u64]) -> u64 {
    dispatch!(mask_of(words))
}

/// Dispatching [`unrolled::popcount`] / [`scalar::popcount`].
#[inline]
pub fn popcount(words: &[u64]) -> u64 {
    dispatch!(popcount(words))
}

/// Dispatching [`unrolled::probe_intersects`] / [`scalar::probe_intersects`].
#[inline]
pub fn probe_intersects(bank: &[AtomicU64], sig: &[u64]) -> bool {
    dispatch!(probe_intersects(bank, sig))
}

/// Dispatching [`unrolled::fold_or`] / [`scalar::fold_or`].
#[inline]
pub fn fold_or(bank: &[AtomicU64], sig: &[u64], word_mask: u64) {
    dispatch!(fold_or(bank, sig, word_mask))
}

/// Dispatching [`unrolled::popcount_atomic`] / [`scalar::popcount_atomic`].
#[inline]
pub fn popcount_atomic(bank: &[AtomicU64]) -> u64 {
    dispatch!(popcount_atomic(bank))
}

/// Dispatching [`unrolled::probe_lines`] / [`scalar::probe_lines`].
#[inline]
pub fn probe_lines(lines: &[BankLine], sig: &[u64]) -> bool {
    dispatch!(probe_lines(lines, sig))
}

/// Dispatching [`unrolled::fold_or_lines`] / [`scalar::fold_or_lines`].
#[inline]
pub fn fold_or_lines(lines: &[BankLine], sig: &[u64], word_mask: u64) {
    dispatch!(fold_or_lines(lines, sig, word_mask))
}

/// Dispatching [`unrolled::popcount_lines`] / [`scalar::popcount_lines`].
#[inline]
pub fn popcount_lines(lines: &[BankLine], nwords: usize) -> u64 {
    dispatch!(popcount_lines(lines, nwords))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn atomics(words: &[u64]) -> Vec<AtomicU64> {
        words.iter().map(|&w| AtomicU64::new(w)).collect()
    }

    fn loads(bank: &[AtomicU64]) -> Vec<u64> {
        bank.iter().map(|w| w.load(Ordering::SeqCst)).collect()
    }

    /// A handful of fixed slices covering empty, sparse, dense, and every
    /// length residue mod 4 (the proptests sweep arbitrary inputs).
    fn cases() -> Vec<Vec<u64>> {
        vec![
            vec![],
            vec![0],
            vec![u64::MAX],
            vec![1, 0, 0],
            vec![0, 2, 0, 4],
            vec![0; 32],
            (0..32).map(|i| if i % 5 == 0 { 1 << i } else { 0 }).collect(),
            (0..33).map(|i| i as u64).collect(),
            (0..130).map(|i| (i as u64).wrapping_mul(0x9E37)).collect(),
        ]
    }

    #[test]
    fn unrolled_matches_scalar_on_fixed_cases() {
        for a in cases() {
            for b in cases() {
                if a.len() != b.len() {
                    continue;
                }
                assert_eq!(
                    unrolled::intersect_any(&a, &b),
                    scalar::intersect_any(&a, &b)
                );
                let (mut d1, mut d2) = (a.clone(), a.clone());
                unrolled::or_into(&mut d1, &b);
                scalar::or_into(&mut d2, &b);
                assert_eq!(d1, d2);
                let (mut d1, mut d2) = (a.clone(), a.clone());
                let r1 = unrolled::and_not_into(&mut d1, &b);
                let r2 = scalar::and_not_into(&mut d2, &b);
                assert_eq!((d1, r1 == 0), (d2, r2 == 0));

                // The masked tier, under the exact-mask contract.
                let (ma, mb) = (scalar::mask_of(&a), scalar::mask_of(&b));
                let (mut d1, mut d2) = (a.clone(), a.clone());
                unrolled::or_into_masked(&mut d1, &b, mb);
                scalar::or_into_masked(&mut d2, &b, mb);
                assert_eq!(d1, d2);
                let mut bulk = a.clone();
                unrolled::or_into(&mut bulk, &b);
                assert_eq!(d1, bulk, "masked OR must equal the unguided kernel");
                let (mut d1, mut d2) = (a.clone(), a.clone());
                let r1 = unrolled::and_not_masked(&mut d1, &b, ma & mb);
                let r2 = scalar::and_not_masked(&mut d2, &b, ma & mb);
                assert_eq!((d1, r1), (d2, r2));
                assert_eq!(
                    unrolled::intersect_any_masked(&a, &b, ma & mb),
                    scalar::intersect_any(&a, &b),
                );
            }
            for mask in [0u64, u64::MAX, 0xF0F0_F0F0] {
                assert_eq!(
                    unrolled::fold_masked(&a, mask),
                    scalar::fold_masked(&a, mask)
                );
                let ma = scalar::mask_of(&a);
                assert_eq!(unrolled::fold_live(&a, mask, ma), scalar::fold_live(&a, mask, ma));
                assert_eq!(
                    scalar::fold_live(&a, mask, ma),
                    scalar::fold_masked(&a, mask),
                    "guided fold must equal the unguided kernel under the mask invariant"
                );
            }
            assert_eq!(unrolled::mask_of(&a), scalar::mask_of(&a));
            assert_eq!(unrolled::popcount(&a), scalar::popcount(&a));
            assert_eq!(
                unrolled::popcount_atomic(&atomics(&a)),
                scalar::popcount_atomic(&atomics(&a))
            );
        }
    }

    #[test]
    fn atomic_kernels_match_scalar() {
        for bank0 in cases() {
            for sig in cases() {
                if bank0.len() != sig.len() {
                    continue;
                }
                assert_eq!(
                    unrolled::probe_intersects(&atomics(&bank0), &sig),
                    scalar::probe_intersects(&atomics(&bank0), &sig)
                );
                for mask in [0u64, u64::MAX, 0xAAAA_5555] {
                    let (b1, b2) = (atomics(&bank0), atomics(&bank0));
                    unrolled::fold_or(&b1, &sig, mask);
                    scalar::fold_or(&b2, &sig, mask);
                    assert_eq!(loads(&b1), loads(&b2));
                }
            }
        }
    }

    fn lines_of(words: &[u64]) -> Vec<BankLine> {
        words
            .chunks(8)
            .map(|c| {
                let mut line: [AtomicU64; 8] = Default::default();
                for (l, &w) in line.iter_mut().zip(c) {
                    *l = AtomicU64::new(w);
                }
                BankLine::new(line)
            })
            .collect()
    }

    fn line_loads(lines: &[BankLine], n: usize) -> Vec<u64> {
        (0..n)
            .map(|i| lines[i / 8].0[i % 8].load(Ordering::SeqCst))
            .collect()
    }

    #[test]
    fn line_kernels_match_scalar() {
        for bank0 in cases() {
            for sig in cases() {
                if bank0.len() != sig.len() || sig.is_empty() {
                    continue;
                }
                assert_eq!(
                    unrolled::probe_lines(&lines_of(&bank0), &sig),
                    scalar::probe_lines(&lines_of(&bank0), &sig)
                );
                let sm = scalar::mask_of(&sig);
                assert_eq!(
                    unrolled::probe_lines_masked(&lines_of(&bank0), &sig, sm),
                    scalar::probe_lines_masked(&lines_of(&bank0), &sig, sm)
                );
                assert_eq!(
                    scalar::probe_lines_masked(&lines_of(&bank0), &sig, sm),
                    scalar::probe_lines(&lines_of(&bank0), &sig)
                );
                for mask in [0u64, u64::MAX, 0xAAAA_5555] {
                    let (l1, l2) = (lines_of(&bank0), lines_of(&bank0));
                    unrolled::fold_or_lines(&l1, &sig, mask);
                    scalar::fold_or_lines(&l2, &sig, mask);
                    assert_eq!(line_loads(&l1, sig.len()), line_loads(&l2, sig.len()));
                }
                assert_eq!(
                    unrolled::popcount_lines(&lines_of(&bank0), bank0.len()),
                    scalar::popcount_lines(&lines_of(&bank0), bank0.len())
                );
            }
        }
    }

    #[test]
    fn dispatch_counts_scalar_falls() {
        let _ = take_scalar_calls();
        set_scalar(false);
        assert!(!intersect_any(&[1], &[2]));
        // Another test may flip the global concurrently; only assert the
        // scalar window's own accounting.
        set_scalar(true);
        let before = take_scalar_calls();
        assert_eq!(mask_of(&[0, 1]), 1 << 1);
        assert_eq!(popcount(&[7]), 3);
        let counted = take_scalar_calls();
        set_scalar(false);
        assert!(counted >= 2, "scalar dispatches must be counted: {before} {counted}");
    }
}
