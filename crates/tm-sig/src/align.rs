//! Cache-line alignment helpers, re-exported from the simulator crate.
//!
//! The canonical definitions live in [`htm_sim::align`] — the bottom of the
//! dependency stack — so every layer shares one wrapper type. See that module
//! for the layout rules and const-assertions.

pub use htm_sim::align::{CacheAligned, CACHE_LINE};
