//! Epoch-bank reset stress: sustained publish pressure through multiple full
//! epoch retirements, with and without pinned validators.
//!
//! Server traffic is the first workload that keeps a summary under continuous
//! publish pressure while validators hold epoch pins across their probes
//! (`docs/ring-sharding.md`, grace-period rule), so this pins the three
//! properties that traffic depends on:
//!
//! 1. under pressure alone, the epoch protocol keeps retiring banks
//!    (≥ 3 full retirements here — the two banks each get cleared);
//! 2. while a validator stays pinned to an older epoch, every due reset is
//!    *deferred* — never performed, never blocking the publisher;
//! 3. the deferral does not leak: the moment the pin drops, retirement
//!    resumes and proceeds at full cadence, and the publish occupancy
//!    counters balance back to zero.

use tm_sig::{ResetAttempt, ResetMode, RingSummary, Sig, SigSpec, SummaryTuning};

const SPEC_BITS: u32 = 512;

/// Aggressive tuning so a handful of publishes is "sustained pressure":
/// density check every 32 publishes (the controller's floor), reset once 1/8
/// of the bits are live.
fn tuning() -> SummaryTuning {
    SummaryTuning {
        mode: ResetMode::Epoch,
        density_num: 1,
        density_den: 8,
        check_interval: 32,
    }
}

/// One publisher step: announce, fold a signature of eight fresh addresses,
/// then attempt the post-commit reset sweep exactly like the executors do.
fn publish_and_sweep(sum: &RingSummary, round: u64, ts: &mut u64) -> ResetAttempt {
    sum.begin_publish();
    let mut sig = Sig::new(SigSpec::new(SPEC_BITS));
    for i in 0..8u64 {
        sig.add((round * 8 + i) as u32 * 97);
    }
    *ts += 1;
    sum.complete_publish(&sig);
    let t = *ts;
    sum.maybe_reset_with(|| t, || (), |_| ())
}

#[test]
fn sustained_publishes_retire_epochs() {
    let sum = RingSummary::with_tuning(SigSpec::new(SPEC_BITS), tuning());
    let mut ts = 0u64;
    let mut done = 0u64;
    for round in 0..1024 {
        match publish_and_sweep(&sum, round, &mut ts) {
            ResetAttempt::Done => done += 1,
            ResetAttempt::Deferred => panic!("deferred with no pins held"),
            ResetAttempt::Idle => {}
        }
    }
    assert!(done >= 3, "only {done} epoch retirements under pressure");
    assert_eq!(
        sum.started_publishes(),
        sum.completed_publishes(),
        "publish occupancy must balance when idle"
    );
    assert_eq!(sum.inflight_publishes(), 0);
}

#[test]
fn pinned_validator_defers_resets_without_leaking() {
    let sum = RingSummary::with_tuning(SigSpec::new(SPEC_BITS), tuning());
    let mut ts = 0u64;
    let mut round = 0u64;

    // Warm up: at least one retirement so both banks have been current.
    let mut warm_done = 0;
    while warm_done < 1 {
        if publish_and_sweep(&sum, round, &mut ts) == ResetAttempt::Done {
            warm_done += 1;
        }
        round += 1;
    }

    // A validator pins the current epoch and stays pinned. The first
    // retirement after the pin may still complete (the pin is not older than
    // the epoch it names — the reset clears the bank the validator is *not*
    // reading); every retirement after that must defer, because the pin is
    // now older than the current epoch and the grace-period rule protects
    // the bank the validator may still be probing.
    let pinned_epoch = sum.pin_epoch(0);
    let mut done_after_pin = 0u64;
    let mut deferred = 0u64;
    for _ in 0..512 {
        match publish_and_sweep(&sum, round, &mut ts) {
            ResetAttempt::Done => done_after_pin += 1,
            ResetAttempt::Deferred => deferred += 1,
            ResetAttempt::Idle => {}
        }
        round += 1;
    }
    assert!(
        done_after_pin <= 1,
        "grace period violated: {done_after_pin} retirements cleared a bank \
         a validator pinned at epoch {pinned_epoch} could still be reading"
    );
    assert!(
        deferred >= 3,
        "only {deferred} deferrals under sustained pressure — the due reset \
         is not being re-attempted"
    );

    // Drop the pin: the deferral must not leak. Retirement resumes and runs
    // ≥ 3 further full retirements under the same pressure.
    sum.unpin(0);
    let mut done_after_unpin = 0u64;
    for _ in 0..1024 {
        match publish_and_sweep(&sum, round, &mut ts) {
            ResetAttempt::Done => done_after_unpin += 1,
            ResetAttempt::Deferred => panic!("deferred after the pin dropped"),
            ResetAttempt::Idle => {}
        }
        round += 1;
    }
    assert!(
        done_after_unpin >= 3,
        "retirement did not resume after unpin ({done_after_unpin} resets): \
         deferred-reset leak"
    );
    assert_eq!(sum.started_publishes(), sum.completed_publishes());
    assert_eq!(sum.inflight_publishes(), 0);
}
