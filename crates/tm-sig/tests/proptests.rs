//! Property-based tests of the signature algebra, the ring's validation window,
//! the segment journal (vs the clone-based reference), the summary fast path
//! (vs ground truth, under real multithreaded interleavings), the sharded
//! ring (vs per-shard ground truth, plus a shard-count=1 differential oracle
//! against the single ring), the epoch reset protocol (vs ground truth
//! under concurrent resets, vs the seqlock protocol as a differential oracle,
//! and the skip-untouched-shards software publish vs a publish-everything
//! oracle), the unrolled word kernels (word-for-word vs the scalar oracles),
//! and the signature arena's cleared-on-recycle contract.

use htm_sim::{HeapBuilder, HtmConfig, HtmSystem};
use proptest::prelude::*;
use std::sync::atomic::{AtomicU64, Ordering::SeqCst};
use std::sync::Mutex;
use tm_sig::kernels::{scalar, unrolled, BankLine};
use tm_sig::{
    CloneSaved, ResetMode, Ring, RingSummary, ShardTimes, ShardedRing, Sig, SigArena, SigJournal,
    SigSlot, SigSpec, SummaryTuning,
};

fn arb_addrs() -> impl Strategy<Value = Vec<u32>> {
    proptest::collection::vec(0u32..100_000, 0..64)
}

/// Equal-length word-slice pairs for the kernel differentials: every length
/// residue mod 4 (so the unrolled tails are hit), words zero-biased so whole
/// 4-word chunks qualify for the chunk skip. Lengths sweep past 64 to cover
/// the folded >64-word geometry and both 1- and 2-word (sub-chunk) slices;
/// 32 words is the paper spec.
fn arb_word_pair() -> impl Strategy<Value = (Vec<u64>, Vec<u64>)> {
    let word = || prop_oneof![Just(0u64), Just(0u64), 1u64..=u64::MAX];
    proptest::collection::vec((word(), word()), 0..70).prop_map(|v| v.into_iter().unzip())
}

/// The executor's journaled-add pattern (see `SigPair::add_journaled`).
fn journaled_add(j: &mut SigJournal, sig: &mut Sig, slot: SigSlot, addr: u32) {
    let (w, m) = sig.spec().slot_of(addr);
    let old = sig.word(w);
    if old & m == 0 {
        j.note(slot, w, old);
        sig.add_slot(w, m);
    }
}

/// splitmix64: cheap deterministic address derivation for the threaded test.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// Bloom filters never produce false negatives.
    #[test]
    fn no_false_negatives(addrs in arb_addrs(), bits in prop_oneof![Just(512u32), Just(2048), Just(8192)]) {
        let mut s = Sig::new(SigSpec::new(bits));
        for &a in &addrs {
            s.add(a);
        }
        for &a in &addrs {
            prop_assert!(s.contains(a));
        }
    }

    /// Union is an upper bound of both operands; subtraction of a disjoint
    /// signature is the identity.
    #[test]
    fn union_and_subtract_laws(a in arb_addrs(), b in arb_addrs()) {
        let spec = SigSpec::PAPER;
        let mut sa = Sig::new(spec);
        let mut sb = Sig::new(spec);
        for &x in &a { sa.add(x); }
        for &x in &b { sb.add(x); }

        let mut u = sa.clone();
        u.union_with(&sb);
        u.assert_mask_invariant();
        for &x in a.iter().chain(b.iter()) {
            prop_assert!(u.contains(x));
        }

        // (a ∪ b) − b ⊆ a at the bit level: every surviving bit is in a.
        let mut diff = u.clone();
        diff.subtract(&sb);
        diff.assert_mask_invariant();
        for (w_diff, w_a) in diff.words().iter().zip(sa.words()) {
            prop_assert_eq!(w_diff & !w_a, 0);
        }
    }

    /// `intersects` agrees with the word-level definition and is symmetric.
    #[test]
    fn intersects_symmetric(a in arb_addrs(), b in arb_addrs()) {
        let spec = SigSpec::PAPER;
        let mut sa = Sig::new(spec);
        let mut sb = Sig::new(spec);
        for &x in &a { sa.add(x); }
        for &x in &b { sb.add(x); }
        let manual = sa.words().iter().zip(sb.words()).any(|(&x, &y)| x & y != 0);
        prop_assert_eq!(sa.intersects(&sb), manual);
        prop_assert_eq!(sa.intersects(&sb), sb.intersects(&sa));
    }

    /// Ring validation is complete within the window: a reader of address `x`
    /// starting at time `t0` is invalidated iff some commit after `t0` wrote `x`'s
    /// bit (false positives allowed, false negatives never — unless the window
    /// rolled over, which must be reported as such).
    #[test]
    fn ring_validation_complete(
        commits in proptest::collection::vec(arb_addrs(), 1..12),
        probe in 0u32..100_000,
        start_after in 0usize..12,
    ) {
        let sys = HtmSystem::new(HtmConfig::default(), 1 << 16);
        let mut b = HeapBuilder::new(1 << 16);
        let ring = Ring::alloc(&mut b, 8, SigSpec::PAPER);
        let th = sys.thread(0);

        let start_after = start_after.min(commits.len());
        let mut rsig = Sig::new(SigSpec::PAPER);
        rsig.add(probe);

        for addrs in &commits {
            let mut w = Sig::new(SigSpec::PAPER);
            for &a in addrs {
                w.add(a);
            }
            ring.publish_software(&th, &w);
        }
        let start_time = start_after as u64;
        let result = ring.validate_nt(&th, &rsig, start_time);

        let window = commits.len() as u64 - start_time;
        let overflowed = window > ring.size();
        let truly_conflicting = commits[start_after..]
            .iter()
            .any(|addrs| addrs.iter().any(|&a| SigSpec::PAPER.bit_of(a) == SigSpec::PAPER.bit_of(probe)));

        match result {
            Ok(ts) => {
                // Completeness: may not succeed if a real conflict is in the window.
                prop_assert!(!truly_conflicting, "missed a conflict");
                prop_assert!(!overflowed, "missed a rollover");
                prop_assert_eq!(ts, commits.len() as u64);
            }
            Err(tm_sig::RingValidationError::Invalid) => {
                // Soundness of the error is only "some bit collided", which Bloom
                // filters permit spuriously; nothing further to assert.
            }
            Err(tm_sig::RingValidationError::Rollover) => {
                prop_assert!(overflowed, "spurious rollover report");
            }
        }
    }

    /// Differential test of the zero-clone retry machinery: a sequence of
    /// segments, each a mix of read- and write-signature adds ending in commit or
    /// failure, run once through the journal (note/rollback/discard) and once
    /// through the clone-based save/restore it replaced. The signatures must
    /// agree after every segment, on both the exact-mask (2048-bit) and the
    /// folded-mask (8192-bit) geometry.
    #[test]
    fn journal_matches_clone_reference(
        pre in arb_addrs(),
        segs in proptest::collection::vec((arb_addrs(), arb_addrs(), 0u8..2), 1..8),
        bits in prop_oneof![Just(2048u32), Just(8192)],
    ) {
        let spec = SigSpec::new(bits);
        let mut r_j = Sig::new(spec);
        let mut w_j = Sig::new(spec);
        for &a in &pre {
            r_j.add(a);
            w_j.add(a ^ 0x5555);
        }
        let mut r_c = r_j.clone();
        let mut w_c = w_j.clone();
        let mut j = SigJournal::new();

        for (reads, writes, commits) in &segs {
            let saved = CloneSaved::save(&r_c, &w_c);
            j.begin(spec);
            for &a in reads {
                journaled_add(&mut j, &mut r_j, SigSlot::Read, a);
                r_c.add(a);
            }
            for &a in writes {
                journaled_add(&mut j, &mut w_j, SigSlot::Write, a);
                w_c.add(a);
            }
            if *commits == 1 {
                j.discard();
            } else {
                j.rollback(&mut r_j, &mut w_j);
                saved.restore(&mut r_c, &mut w_c);
            }
            r_j.assert_mask_invariant();
            w_j.assert_mask_invariant();
            prop_assert_eq!(&r_j, &r_c);
            prop_assert_eq!(&w_j, &w_c);
        }
    }

    /// Multithreaded ground-truth test of the summary fast path: hardware and
    /// software publishers interleave with a validator under real concurrency.
    /// Every publish deposits its exact signature in a shadow table indexed by
    /// commit timestamp; whenever the validator's *fast path* admits a window
    /// `(start, ts]`, every signature published in that window must be disjoint
    /// from the validator's read signature. False positives (falling back to the
    /// precise walk) are allowed; a false negative fails the test.
    #[test]
    fn summary_fast_path_never_admits_a_conflict(seed in 0u64..(1 << 48)) {
        const SW_PUBS: u64 = 60;   // per software publisher (x2)
        const HW_PUBS: u64 = 30;
        const MAX_TS: usize = (2 * SW_PUBS + HW_PUBS) as usize;
        let sys = HtmSystem::new(HtmConfig::default(), 1 << 18);
        let mut b = HeapBuilder::new(1 << 18);
        let ring = Ring::alloc(&mut b, 4096, SigSpec::PAPER); // no rollover
        let summary = RingSummary::new(SigSpec::PAPER);
        let shadow: Vec<Mutex<Option<Sig>>> = (0..=MAX_TS).map(|_| Mutex::new(None)).collect();

        let make_sig = |stream: u64, i: u64| {
            let mut s = Sig::new(SigSpec::PAPER);
            for k in 0..3 {
                s.add((mix(seed ^ (stream << 56) ^ (i << 8) ^ k) % 100_000) as u32);
            }
            s
        };
        // The validator reads a fixed small set derived from the same seed.
        let rsig = make_sig(9, 0);

        std::thread::scope(|s| {
            let (ring, summary, shadow, rsig) = (&ring, &summary, &shadow, &rsig);
            for p in 0..2u64 {
                let sys = &sys;
                s.spawn(move || {
                    let th = sys.thread(p as usize);
                    for i in 0..SW_PUBS {
                        let sig = make_sig(p, i);
                        let ts = ring.publish_software_summarized(&th, &sig, summary);
                        *shadow[ts as usize].lock().unwrap() = Some(sig);
                    }
                });
            }
            {
                let sys = &sys;
                s.spawn(move || {
                    let mut th = sys.thread(2);
                    for i in 0..HW_PUBS {
                        let sig = make_sig(7, i);
                        loop {
                            let mut announced = false;
                            let res = th.attempt(|tx| {
                                announced = false;
                                let ts = ring.publish_tx_summarized(tx, &sig, summary)?;
                                announced = true;
                                Ok(ts)
                            });
                            match res {
                                Ok(ts) => {
                                    summary.complete_publish(&sig);
                                    *shadow[ts as usize].lock().unwrap() = Some(sig.clone());
                                    break;
                                }
                                Err(_) => {
                                    if announced {
                                        summary.cancel_publish();
                                    }
                                    std::thread::yield_now();
                                }
                            }
                        }
                    }
                });
            }
            {
                let sys = &sys;
                s.spawn(move || {
                    let th = sys.thread(3);
                    let mut start = 0u64;
                    for _ in 0..400 {
                        let (res, fast) =
                            ring.validate_summarized_nt(&th, summary, rsig, start);
                        if let Ok(ts) = res {
                            if fast {
                                // The fast path claimed (start, ts] is clean:
                                // check against the exact published signatures.
                                for m in start + 1..=ts {
                                    let mut spins = 0u64;
                                    loop {
                                        if let Some(sig) = shadow[m as usize].lock().unwrap().as_ref() {
                                            assert!(
                                                !sig.intersects(rsig),
                                                "fast path admitted a conflicting publish at ts {m}"
                                            );
                                            break;
                                        }
                                        spins += 1;
                                        assert!(spins < 10_000_000, "publisher never filled shadow[{m}]");
                                        std::thread::yield_now();
                                    }
                                }
                            }
                            start = ts;
                        }
                        std::hint::spin_loop();
                    }
                });
            }
        });
    }

    /// Shard-count=1 differential oracle: a 1-shard [`ShardedRing`] must agree
    /// exactly with a plain [`Ring`] of the same size fed the same commit
    /// sequence — same verdict, same advanced timestamp — including across ring
    /// rollover (both rings use 8 entries so overflow is exercised).
    #[test]
    fn single_shard_matches_plain_ring_oracle(
        commits in proptest::collection::vec(arb_addrs(), 1..12),
        probe in 0u32..100_000,
        start_after in 0usize..12,
    ) {
        let sys = HtmSystem::new(HtmConfig::default(), 1 << 16);
        let mut b = HeapBuilder::new(1 << 16);
        let sharded = ShardedRing::alloc(&mut b, 1, 8, SigSpec::PAPER);
        let oracle = Ring::alloc(&mut b, 8, SigSpec::PAPER);
        let summaries = sharded.new_summary();
        let oracle_summary = RingSummary::new(SigSpec::PAPER);
        let th = sys.thread(0);

        // Empty signatures diverge by design (the sharded ring skips them; the
        // plain ring burns a timestamp) — that case has its own unit test. Keep
        // the two timestamp streams aligned by publishing only non-empty commits.
        let commits: Vec<_> = commits.into_iter().filter(|a| !a.is_empty()).collect();
        for addrs in &commits {
            let mut w = Sig::new(SigSpec::PAPER);
            for &a in addrs {
                w.add(a);
            }
            let (mask, times) = sharded.publish_software_summarized(&th, &w, &summaries);
            let ots = oracle.publish_software_summarized(&th, &w, &oracle_summary);
            prop_assert_eq!((mask, times.get(0)), (1, ots));
        }

        let start_after = start_after.min(commits.len()) as u64;
        let mut rsig = Sig::new(SigSpec::PAPER);
        rsig.add(probe);
        let mut times = ShardTimes::new();
        times.set(0, start_after);
        let v = sharded.validate_summarized_nt(&th, &summaries, &rsig, &mut times);
        let (ores, _) =
            oracle.validate_summarized_nt(&th, &oracle_summary, &rsig, start_after);
        match (v.result, ores) {
            (Ok(()), Ok(ots)) => prop_assert_eq!(times.get(0), ots),
            (Err(e), Err(oe)) => prop_assert_eq!(e, oe),
            (a, b) => prop_assert!(false, "sharded {a:?} vs oracle {b:?}"),
        }
    }

    /// Multithreaded ground-truth test of the sharded ring: cross-shard software
    /// and hardware publishers interleave with a validator. Every publish
    /// deposits its signature in per-shard shadow tables keyed by that shard's
    /// commit timestamp (the [`ShardTimes`] the publish returns). Whenever the
    /// validator's per-shard fast pass admits a window in a shard, every
    /// signature published in that shard's window must be disjoint from the
    /// validator's read signature *restricted to the shard's word range* —
    /// conflicts on a word must always be caught in the shard owning it.
    #[test]
    fn sharded_fast_path_never_admits_a_conflict(seed in 0u64..(1 << 48)) {
        const SW_PUBS: u64 = 60; // per software publisher (x2)
        const HW_PUBS: u64 = 30;
        const MAX_TS: usize = (2 * SW_PUBS + HW_PUBS) as usize;
        let sys = HtmSystem::new(HtmConfig::default(), 1 << 20);
        let mut b = HeapBuilder::new(1 << 20);
        let ring = ShardedRing::alloc(&mut b, 8, 1024, SigSpec::PAPER); // no rollover
        let summaries = ring.new_summary();
        let nsh = ring.shard_count();
        let shadow: Vec<Vec<Mutex<Option<Sig>>>> = (0..nsh)
            .map(|_| (0..=MAX_TS).map(|_| Mutex::new(None)).collect())
            .collect();

        let make_sig = |stream: u64, i: u64| {
            let mut s = Sig::new(SigSpec::PAPER);
            for k in 0..3 {
                s.add((mix(seed ^ (stream << 56) ^ (i << 8) ^ k) % 100_000) as u32);
            }
            s
        };
        let rsig = make_sig(9, 0);
        // a ∩ b restricted to shard s's word range.
        let intersects_in_shard = |ring: &ShardedRing, s: usize, a: &Sig, b: &Sig| {
            let m = ring.shard_word_mask(s);
            a.words()
                .iter()
                .zip(b.words())
                .enumerate()
                .any(|(i, (&x, &y))| i < 64 && m & (1 << i) != 0 && x & y != 0)
        };
        let deposit = |mask: u32, times: &ShardTimes, sig: &Sig| {
            for s in 0..nsh {
                if mask & (1 << s) != 0 {
                    *shadow[s][times.get(s) as usize].lock().unwrap() = Some(sig.clone());
                }
            }
        };

        std::thread::scope(|scope| {
            let (ring, summaries, shadow, rsig) = (&ring, &summaries, &shadow, &rsig);
            let (intersects_in_shard, deposit) = (&intersects_in_shard, &deposit);
            for p in 0..2u64 {
                let sys = &sys;
                scope.spawn(move || {
                    let th = sys.thread(p as usize);
                    for i in 0..SW_PUBS {
                        let sig = make_sig(p, i);
                        let (mask, times) =
                            ring.publish_software_summarized(&th, &sig, summaries);
                        deposit(mask, &times, &sig);
                    }
                });
            }
            {
                let sys = &sys;
                scope.spawn(move || {
                    let mut th = sys.thread(2);
                    for i in 0..HW_PUBS {
                        let sig = make_sig(7, i);
                        loop {
                            let mut announced = 0u32;
                            let res = th.attempt(|tx| {
                                announced = 0;
                                let (mask, times) =
                                    ring.publish_tx_summarized(tx, &sig, summaries)?;
                                announced = mask;
                                Ok((mask, times))
                            });
                            match res {
                                Ok((mask, times)) => {
                                    ring.complete_publish(&sig, mask, &times, summaries);
                                    deposit(mask, &times, &sig);
                                    break;
                                }
                                Err(_) => {
                                    if announced != 0 {
                                        ring.cancel_publish(announced, summaries);
                                    }
                                    std::thread::yield_now();
                                }
                            }
                        }
                    }
                });
            }
            {
                let sys = &sys;
                scope.spawn(move || {
                    let th = sys.thread(3);
                    let mut times = ShardTimes::new();
                    for _ in 0..400 {
                        let prev = times;
                        let v = ring.validate_summarized_nt(&th, summaries, rsig, &mut times);
                        // Check every shard the fast pass admitted, whether or not
                        // a later shard ultimately failed the validation.
                        for (s, shard_shadow) in shadow.iter().enumerate().take(nsh) {
                            if v.fast_shards & (1 << s) == 0 {
                                continue;
                            }
                            for m in prev.get(s) + 1..=times.get(s) {
                                let mut spins = 0u64;
                                loop {
                                    if let Some(sig) =
                                        shard_shadow[m as usize].lock().unwrap().as_ref()
                                    {
                                        assert!(
                                            !intersects_in_shard(ring, s, sig, rsig),
                                            "shard {s} fast pass admitted a conflicting \
                                             publish at shard-ts {m}"
                                        );
                                        break;
                                    }
                                    spins += 1;
                                    assert!(
                                        spins < 10_000_000,
                                        "publisher never filled shadow[{s}][{m}]"
                                    );
                                    std::thread::yield_now();
                                }
                            }
                        }
                        std::hint::spin_loop();
                    }
                });
            }
        });
    }

    /// Multithreaded ground-truth test of the **epoch** protocol's grouped fast
    /// pass ([`ShardedRing::validate_touched_nt`]): cross-shard software and
    /// hardware publishers interleave with a validator *and a dedicated
    /// resetter* hammering [`ShardedRing::maybe_reset_summaries`] under an
    /// aggressively low density threshold and check interval, so bank flips,
    /// floor sentinels and probe clears all fire mid-validation. Whenever the
    /// validator's fast pass (group probe or per-shard epoch probe) admits a
    /// window in a shard, every signature published in that shard's window must
    /// be disjoint from the read signature restricted to the shard's word
    /// range. False positives (walking) are allowed; a false negative fails.
    #[test]
    fn epoch_fast_pass_never_admits_a_conflict(seed in 0u64..(1 << 48)) {
        const SW_PUBS: u64 = 60; // per software publisher (x2)
        const HW_PUBS: u64 = 30;
        const MAX_TS: usize = (2 * SW_PUBS + HW_PUBS) as usize;
        let sys = HtmSystem::new(HtmConfig::default(), 1 << 20);
        let mut b = HeapBuilder::new(1 << 20);
        let ring = ShardedRing::alloc(&mut b, 8, 1024, SigSpec::PAPER); // no rollover
        let summaries = ring.new_summary_tuned(SummaryTuning {
            mode: ResetMode::Epoch,
            density_num: 1,
            density_den: 64,
            check_interval: 4,
        });
        let nsh = ring.shard_count();
        let shadow: Vec<Vec<Mutex<Option<Sig>>>> = (0..nsh)
            .map(|_| (0..=MAX_TS).map(|_| Mutex::new(None)).collect())
            .collect();

        let make_sig = |stream: u64, i: u64| {
            let mut s = Sig::new(SigSpec::PAPER);
            for k in 0..3 {
                s.add((mix(seed ^ (stream << 56) ^ (i << 8) ^ k) % 100_000) as u32);
            }
            s
        };
        let rsig = make_sig(9, 0);
        let intersects_in_shard = |ring: &ShardedRing, s: usize, a: &Sig, b: &Sig| {
            let m = ring.shard_word_mask(s);
            a.words()
                .iter()
                .zip(b.words())
                .enumerate()
                .any(|(i, (&x, &y))| i < 64 && m & (1 << i) != 0 && x & y != 0)
        };
        let deposit = |mask: u32, times: &ShardTimes, sig: &Sig| {
            for s in 0..nsh {
                if mask & (1 << s) != 0 {
                    *shadow[s][times.get(s) as usize].lock().unwrap() = Some(sig.clone());
                }
            }
        };

        std::thread::scope(|scope| {
            let (ring, summaries, shadow, rsig) = (&ring, &summaries, &shadow, &rsig);
            let (intersects_in_shard, deposit) = (&intersects_in_shard, &deposit);
            for p in 0..2u64 {
                let sys = &sys;
                scope.spawn(move || {
                    let th = sys.thread(p as usize);
                    for i in 0..SW_PUBS {
                        let sig = make_sig(p, i);
                        let (mask, times) =
                            ring.publish_software_summarized(&th, &sig, summaries);
                        deposit(mask, &times, &sig);
                    }
                });
            }
            {
                let sys = &sys;
                scope.spawn(move || {
                    let mut th = sys.thread(2);
                    for i in 0..HW_PUBS {
                        let sig = make_sig(7, i);
                        loop {
                            let mut announced = 0u32;
                            let res = th.attempt(|tx| {
                                announced = 0;
                                let (mask, times) =
                                    ring.publish_tx_summarized(tx, &sig, summaries)?;
                                announced = mask;
                                Ok((mask, times))
                            });
                            match res {
                                Ok((mask, times)) => {
                                    ring.complete_publish(&sig, mask, &times, summaries);
                                    deposit(mask, &times, &sig);
                                    break;
                                }
                                Err(_) => {
                                    if announced != 0 {
                                        ring.cancel_publish(announced, summaries);
                                    }
                                    std::thread::yield_now();
                                }
                            }
                        }
                    }
                });
            }
            {
                // The resetter: with density 1/64 and interval 4 nearly every
                // sweep retires a bank somewhere, racing the validator's pins.
                let sys = &sys;
                scope.spawn(move || {
                    let th = sys.thread(4);
                    for _ in 0..2_000 {
                        ring.maybe_reset_summaries(&th, summaries);
                        std::thread::yield_now();
                    }
                });
            }
            {
                let sys = &sys;
                scope.spawn(move || {
                    let th = sys.thread(3);
                    let mut times = ShardTimes::new();
                    for _ in 0..400 {
                        let prev = times;
                        let v = ring.validate_touched_nt(&th, summaries, rsig, &mut times);
                        for (s, shard_shadow) in shadow.iter().enumerate().take(nsh) {
                            if v.fast_shards & (1 << s) == 0 {
                                continue;
                            }
                            for m in prev.get(s) + 1..=times.get(s) {
                                let mut spins = 0u64;
                                loop {
                                    if let Some(sig) =
                                        shard_shadow[m as usize].lock().unwrap().as_ref()
                                    {
                                        assert!(
                                            !intersects_in_shard(ring, s, sig, rsig),
                                            "shard {s} epoch fast pass admitted a \
                                             conflicting publish at shard-ts {m}"
                                        );
                                        break;
                                    }
                                    spins += 1;
                                    assert!(
                                        spins < 10_000_000,
                                        "publisher never filled shadow[{s}][{m}]"
                                    );
                                    std::thread::yield_now();
                                }
                            }
                        }
                        std::hint::spin_loop();
                    }
                });
            }
        });
    }

    /// Epoch-vs-seqlock differential oracle on the plain [`Ring`], at both the
    /// compact-entry (2048-bit, 32-word) geometry and the full-entry-layout
    /// boundary (4096-bit, 64-word — the widest a ring entry's single mask
    /// word supports): the same commit sequence is fed to two identical rings,
    /// one summarized under the epoch protocol (aggressive tuning, so resets
    /// actually fire) and one under the legacy seqlock. The two summaries may
    /// disagree about *how* a validation was decided (fast pass vs precise
    /// walk), but never about the verdict or the advanced timestamp — the fast
    /// pass only ever says "definitely clean", and both sides share the precise
    /// walk as their fallback. The >64-word folded geometry has no ring; its
    /// differential is [`epoch_matches_seqlock_on_folded_geometry`] below.
    #[test]
    fn epoch_matches_seqlock_oracle(
        commits in proptest::collection::vec(arb_addrs(), 1..14),
        probe in 0u32..100_000,
        bits in prop_oneof![Just(2048u32), Just(4096)],
        reset_every in 1usize..5,
    ) {
        let spec = SigSpec::new(bits);
        let sys = HtmSystem::new(HtmConfig::default(), 1 << 18);
        let mut b = HeapBuilder::new(1 << 18);
        let ring_e = Ring::alloc(&mut b, 64, spec); // no rollover
        let ring_s = Ring::alloc(&mut b, 64, spec);
        let sum_e = RingSummary::with_tuning(spec, SummaryTuning {
            mode: ResetMode::Epoch,
            density_num: 1,
            density_den: 64,
            check_interval: 1,
        });
        let sum_s = RingSummary::with_tuning(spec, SummaryTuning {
            mode: ResetMode::Seqlock,
            density_num: 1,
            density_den: 64,
            check_interval: 1,
        });
        let th = sys.thread(0);

        let mut rsig = Sig::new(spec);
        rsig.add(probe);
        let mut start = 0u64;
        for (i, addrs) in commits.iter().enumerate() {
            let mut w = Sig::new(spec);
            for &a in addrs {
                w.add(a);
            }
            let ts_e = ring_e.publish_software_summarized(&th, &w, &sum_e);
            let ts_s = ring_s.publish_software_summarized(&th, &w, &sum_s);
            prop_assert_eq!(ts_e, ts_s);
            if i % reset_every == 0 {
                ring_e.maybe_reset_summary(&th, &sum_e);
                ring_s.maybe_reset_summary(&th, &sum_s);
            }
            let (res_e, _fast_e) = ring_e.validate_summarized_nt(&th, &sum_e, &rsig, start);
            let (res_s, _fast_s) = ring_s.validate_summarized_nt(&th, &sum_s, &rsig, start);
            prop_assert_eq!(res_e, res_s, "protocols disagreed at commit {}", i);
            if let Ok(ts) = res_e {
                start = ts;
            }
        }
    }

    /// Epoch-vs-seqlock differential on the **folded** signature geometry
    /// (8192 bits, 128 words — word `i` and `i + 64` share a non-zero-word
    /// mask bit, and no ring exists at this width), driven at the
    /// [`RingSummary`] level with synthetic timestamps: identical publish and
    /// reset sequences go to one summary per protocol. Each protocol's fast
    /// pass is checked for soundness against the exact published signatures
    /// (an admitted window must contain no conflicting publish), and whenever
    /// both protocols pass they must agree on the advanced timestamp.
    #[test]
    fn epoch_matches_seqlock_on_folded_geometry(
        commits in proptest::collection::vec(arb_addrs(), 1..20),
        probe in 0u32..100_000,
        reset_every in 1usize..5,
    ) {
        let spec = SigSpec::new(8192);
        let mk = |mode| RingSummary::with_tuning(spec, SummaryTuning {
            mode,
            density_num: 1,
            density_den: 64,
            check_interval: 1,
        });
        let sum_e = mk(ResetMode::Epoch);
        let sum_s = mk(ResetMode::Seqlock);

        let mut rsig = Sig::new(spec);
        rsig.add(probe);
        let mut published: Vec<Sig> = Vec::new(); // index = ts - 1
        let mut start = 0u64;
        for (i, addrs) in commits.iter().enumerate() {
            let mut w = Sig::new(spec);
            for &a in addrs {
                w.add(a);
            }
            let ts = (i + 1) as u64;
            for sum in [&sum_e, &sum_s] {
                sum.begin_publish();
                sum.complete_publish_masked(&w, u64::MAX, ts);
            }
            published.push(w);
            if i % reset_every == 0 {
                for sum in [&sum_e, &sum_s] {
                    sum.maybe_reset_with(|| ts, || {}, |_| {});
                }
            }
            let pass_e = sum_e.try_fast_pass(&rsig, start, || ts);
            let pass_s = sum_s.try_fast_pass(&rsig, start, || ts);
            for (name, pass) in [("epoch", pass_e), ("seqlock", pass_s)] {
                if let Some(adv) = pass {
                    prop_assert!(adv <= ts);
                    // The admitted window is (start, adv]; publish at ts m+1
                    // sits at index m.
                    for m in start..adv {
                        prop_assert!(
                            !published[m as usize].intersects(&rsig),
                            "{name} fast pass admitted a conflicting publish at ts {}",
                            m + 1
                        );
                    }
                }
            }
            if let (Some(a), Some(b)) = (pass_e, pass_s) {
                prop_assert_eq!(a, b, "protocols advanced differently at commit {}", i);
                start = a;
            }
        }
    }

    /// The skip-untouched-shards software publish against a publish-everything
    /// oracle: the same commit sequence goes through an 8-shard ring (whose
    /// software publish acquires, writes and releases only the shards the
    /// signature's word mask touches) and through a plain single ring (which
    /// "publishes through every shard" by construction — every entry carries
    /// the full signature). For any reader, the admitted-conflict set must be
    /// identical: a conflict on word `w` is caught by `w`'s owning shard alone,
    /// and the skipped shards hold no bits of the signature, so skipping them
    /// can neither hide a conflict nor invent one.
    #[test]
    fn software_publish_skip_matches_all_shards_oracle(
        commits in proptest::collection::vec(arb_addrs(), 1..14),
        reads in arb_addrs(),
        epochs in prop_oneof![Just(true), Just(false)],
    ) {
        let sys = HtmSystem::new(HtmConfig::default(), 1 << 20);
        let mut b = HeapBuilder::new(1 << 20);
        let sharded = ShardedRing::alloc(&mut b, 8, 1024, SigSpec::PAPER); // no rollover
        let oracle = Ring::alloc(&mut b, 1024, SigSpec::PAPER);
        let tuning = SummaryTuning {
            mode: if epochs { ResetMode::Epoch } else { ResetMode::Seqlock },
            ..SummaryTuning::default()
        };
        let summaries = sharded.new_summary_tuned(tuning);
        let oracle_summary = RingSummary::with_tuning(SigSpec::PAPER, tuning);
        let th = sys.thread(0);

        let mut rsig = Sig::new(SigSpec::PAPER);
        for &a in &reads {
            rsig.add(a);
        }
        for addrs in &commits {
            let mut w = Sig::new(SigSpec::PAPER);
            for &a in addrs {
                w.add(a);
            }
            let (mask, _times) = sharded.publish_software_summarized(&th, &w, &summaries);
            oracle.publish_software_summarized(&th, &w, &oracle_summary);
            // The skip is real: only shards the signature's words touch are
            // published (empty signatures touch none).
            prop_assert_eq!(mask, sharded.shard_mask(&w));

            // Full-window verdicts must agree after every commit, through both
            // validation entry points.
            let oracle_verdict = oracle.validate_nt(&th, &rsig, 0).map(|_| ());
            let mut t1 = ShardTimes::new();
            let v1 = sharded.validate_summarized_nt(&th, &summaries, &rsig, &mut t1);
            prop_assert_eq!(v1.result, oracle_verdict, "validate_summarized_nt diverged");
            let mut t2 = ShardTimes::new();
            let v2 = sharded.validate_touched_nt(&th, &summaries, &rsig, &mut t2);
            prop_assert_eq!(v2.result, oracle_verdict, "validate_touched_nt diverged");
        }
    }
}

// Second block: the macro's expansion depth grows with the number of tests in
// one block, and the first block is already at the recursion limit.
proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// The unrolled word kernels against the scalar oracles, word for word, on
    /// arbitrary equal-length slices (every length residue mod 4, zero-biased
    /// words so chunk skipping fires) and arbitrary word masks. Covers the
    /// plain, atomic-bank and line-chunked kernel families.
    #[test]
    fn unrolled_kernels_match_scalar_oracles(pair in arb_word_pair(), mask in 0u64..=u64::MAX) {
        let (a, b): (Vec<u64>, Vec<u64>) = pair;
        prop_assert_eq!(unrolled::intersect_any(&a, &b), scalar::intersect_any(&a, &b));

        let (mut d1, mut d2) = (a.clone(), a.clone());
        unrolled::or_into(&mut d1, &b);
        scalar::or_into(&mut d2, &b);
        prop_assert_eq!(&d1, &d2);

        let (mut d1, mut d2) = (a.clone(), a.clone());
        let r1 = unrolled::and_not_into(&mut d1, &b);
        let r2 = scalar::and_not_into(&mut d2, &b);
        prop_assert_eq!((&d1, r1 == 0), (&d2, r2 == 0));

        // The masked tier, under the exact-mask contract the Sig invariant
        // provides (the mask covers every non-zero word of its operand).
        let (ma, mb) = (scalar::mask_of(&a), scalar::mask_of(&b));
        let (mut d1, mut d2) = (a.clone(), a.clone());
        unrolled::or_into_masked(&mut d1, &b, mb);
        scalar::or_into_masked(&mut d2, &b, mb);
        prop_assert_eq!(&d1, &d2);
        let mut bulk = a.clone();
        scalar::or_into(&mut bulk, &b);
        prop_assert_eq!(&d1, &bulk);

        let (mut d1, mut d2) = (a.clone(), a.clone());
        let r1 = unrolled::and_not_masked(&mut d1, &b, ma & mb);
        let r2 = scalar::and_not_masked(&mut d2, &b, ma & mb);
        prop_assert_eq!((&d1, r1), (&d2, r2));

        prop_assert_eq!(
            unrolled::intersect_any_masked(&a, &b, ma & mb),
            scalar::intersect_any(&a, &b)
        );
        prop_assert_eq!(
            scalar::intersect_any_masked(&a, &b, ma & mb),
            scalar::intersect_any(&a, &b)
        );

        for m in [0, u64::MAX, mask] {
            prop_assert_eq!(unrolled::fold_masked(&a, m), scalar::fold_masked(&a, m));
            prop_assert_eq!(unrolled::fold_live(&a, m, ma), scalar::fold_live(&a, m, ma));
            prop_assert_eq!(scalar::fold_live(&a, m, ma), scalar::fold_masked(&a, m));
        }
        prop_assert_eq!(unrolled::mask_of(&a), scalar::mask_of(&a));
        prop_assert_eq!(unrolled::popcount(&a), scalar::popcount(&a));

        let atomics = |w: &[u64]| -> Vec<AtomicU64> {
            w.iter().map(|&x| AtomicU64::new(x)).collect()
        };
        let loads = |bank: &[AtomicU64]| -> Vec<u64> {
            bank.iter().map(|x| x.load(SeqCst)).collect()
        };
        let (b1, b2) = (atomics(&a), atomics(&a));
        prop_assert_eq!(
            unrolled::probe_intersects(&b1, &b),
            scalar::probe_intersects(&b2, &b)
        );
        unrolled::fold_or(&b1, &b, mask);
        scalar::fold_or(&b2, &b, mask);
        prop_assert_eq!(loads(&b1), loads(&b2));
        prop_assert_eq!(unrolled::popcount_atomic(&b1), scalar::popcount_atomic(&b2));

        let lines_of = |w: &[u64]| -> Vec<BankLine> {
            w.chunks(8)
                .map(|c| {
                    let mut line: [AtomicU64; 8] = Default::default();
                    for (l, &x) in line.iter_mut().zip(c) {
                        *l = AtomicU64::new(x);
                    }
                    BankLine::new(line)
                })
                .collect()
        };
        let line_loads = |lines: &[BankLine], n: usize| -> Vec<u64> {
            (0..n).map(|i| lines[i / 8].0[i % 8].load(SeqCst)).collect()
        };
        let (l1, l2) = (lines_of(&a), lines_of(&a));
        prop_assert_eq!(
            unrolled::probe_lines(&l1, &b),
            scalar::probe_lines(&l2, &b)
        );
        prop_assert_eq!(
            unrolled::probe_lines_masked(&l1, &b, mb),
            scalar::probe_lines_masked(&l2, &b, mb)
        );
        prop_assert_eq!(
            scalar::probe_lines_masked(&l2, &b, mb),
            scalar::probe_lines(&l2, &b)
        );
        unrolled::fold_or_lines(&l1, &b, mask);
        scalar::fold_or_lines(&l2, &b, mask);
        prop_assert_eq!(line_loads(&l1, a.len()), line_loads(&l2, a.len()));
        prop_assert_eq!(
            unrolled::popcount_lines(&l1, a.len()),
            scalar::popcount_lines(&l2, a.len())
        );
    }

    /// The arena's lifecycle contract: however a signature or journal was
    /// dirtied before recycling, the next take of the same spec hands back a
    /// provably empty buffer (all words zero, mask invariant intact, no
    /// pending journal entries), on both the inline (2048-bit) and heap-backed
    /// (8192-bit) geometry.
    #[test]
    fn arena_recycled_buffers_come_back_empty(
        addrs in arb_addrs(),
        bits in prop_oneof![Just(2048u32), Just(8192)],
    ) {
        let spec = SigSpec::new(bits);
        let mut arena = SigArena::default();

        let mut s = arena.take_sig(spec);
        let mut j = arena.take_journal();
        j.begin(spec);
        for &a in &addrs {
            journaled_add(&mut j, &mut s, SigSlot::Read, a);
        }
        arena.recycle_sig(s);
        arena.recycle_journal(j);

        let s = arena.take_sig(spec);
        prop_assert!(s.is_empty());
        prop_assert!(s.words().iter().all(|&w| w == 0));
        s.assert_mask_invariant();
        let j = arena.take_journal();
        prop_assert!(j.is_empty());
        let (reuses, allocs) = arena.take_counters();
        prop_assert_eq!((reuses, allocs), (2, 2));
    }
}
