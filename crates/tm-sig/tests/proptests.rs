//! Property-based tests of the signature algebra and the ring's validation window.

use htm_sim::{HeapBuilder, HtmConfig, HtmSystem};
use proptest::prelude::*;
use tm_sig::{Ring, Sig, SigSpec};

fn arb_addrs() -> impl Strategy<Value = Vec<u32>> {
    proptest::collection::vec(0u32..100_000, 0..64)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// Bloom filters never produce false negatives.
    #[test]
    fn no_false_negatives(addrs in arb_addrs(), bits in prop_oneof![Just(512u32), Just(2048), Just(8192)]) {
        let mut s = Sig::new(SigSpec::new(bits));
        for &a in &addrs {
            s.add(a);
        }
        for &a in &addrs {
            prop_assert!(s.contains(a));
        }
    }

    /// Union is an upper bound of both operands; subtraction of a disjoint
    /// signature is the identity.
    #[test]
    fn union_and_subtract_laws(a in arb_addrs(), b in arb_addrs()) {
        let spec = SigSpec::PAPER;
        let mut sa = Sig::new(spec);
        let mut sb = Sig::new(spec);
        for &x in &a { sa.add(x); }
        for &x in &b { sb.add(x); }

        let mut u = sa.clone();
        u.union_with(&sb);
        for &x in a.iter().chain(b.iter()) {
            prop_assert!(u.contains(x));
        }

        // (a ∪ b) − b ⊆ a at the bit level: every surviving bit is in a.
        let mut diff = u.clone();
        diff.subtract(&sb);
        for (w_diff, w_a) in diff.words().iter().zip(sa.words()) {
            prop_assert_eq!(w_diff & !w_a, 0);
        }
    }

    /// `intersects` agrees with the word-level definition and is symmetric.
    #[test]
    fn intersects_symmetric(a in arb_addrs(), b in arb_addrs()) {
        let spec = SigSpec::PAPER;
        let mut sa = Sig::new(spec);
        let mut sb = Sig::new(spec);
        for &x in &a { sa.add(x); }
        for &x in &b { sb.add(x); }
        let manual = sa.words().iter().zip(sb.words()).any(|(&x, &y)| x & y != 0);
        prop_assert_eq!(sa.intersects(&sb), manual);
        prop_assert_eq!(sa.intersects(&sb), sb.intersects(&sa));
    }

    /// Ring validation is complete within the window: a reader of address `x`
    /// starting at time `t0` is invalidated iff some commit after `t0` wrote `x`'s
    /// bit (false positives allowed, false negatives never — unless the window
    /// rolled over, which must be reported as such).
    #[test]
    fn ring_validation_complete(
        commits in proptest::collection::vec(arb_addrs(), 1..12),
        probe in 0u32..100_000,
        start_after in 0usize..12,
    ) {
        let sys = HtmSystem::new(HtmConfig::default(), 1 << 16);
        let mut b = HeapBuilder::new(1 << 16);
        let ring = Ring::alloc(&mut b, 8, SigSpec::PAPER);
        let th = sys.thread(0);

        let start_after = start_after.min(commits.len());
        let mut rsig = Sig::new(SigSpec::PAPER);
        rsig.add(probe);

        for addrs in &commits {
            let mut w = Sig::new(SigSpec::PAPER);
            for &a in addrs {
                w.add(a);
            }
            ring.publish_software(&th, &w);
        }
        let start_time = start_after as u64;
        let result = ring.validate_nt(&th, &rsig, start_time);

        let window = commits.len() as u64 - start_time;
        let overflowed = window > ring.size();
        let truly_conflicting = commits[start_after..]
            .iter()
            .any(|addrs| addrs.iter().any(|&a| SigSpec::PAPER.bit_of(a) == SigSpec::PAPER.bit_of(probe)));

        match result {
            Ok(ts) => {
                // Completeness: may not succeed if a real conflict is in the window.
                prop_assert!(!truly_conflicting, "missed a conflict");
                prop_assert!(!overflowed, "missed a rollover");
                prop_assert_eq!(ts, commits.len() as u64);
            }
            Err(tm_sig::RingValidationError::Invalid) => {
                // Soundness of the error is only "some bit collided", which Bloom
                // filters permit spuriously; nothing further to assert.
            }
            Err(tm_sig::RingValidationError::Rollover) => {
                prop_assert!(overflowed, "spurious rollover report");
            }
        }
    }
}
