//! # part-htm — facade crate
//!
//! Re-exports the full Part-HTM reproduction: the best-effort HTM simulator
//! substrate, the signature/ring metadata substrate, the Part-HTM / Part-HTM-O
//! protocols, the competitor baselines, the workloads of the paper's evaluation, and
//! the experiment harness.
//!
//! See `README.md` for a tour and `DESIGN.md` for the architecture and the
//! per-experiment index.

pub use htm_sim as htm;
pub use part_htm_core as core;
pub use tm_baselines as baselines;
pub use tm_harness as harness;
pub use tm_server as server;
pub use tm_sig as sig;
pub use tm_workloads as workloads;
