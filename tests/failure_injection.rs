//! Failure injection: every protocol must stay serializable when the simulated
//! hardware fires random asynchronous interrupts, shrinks its caches, or both.
//! These runs push every fallback path hard (retries, partitioned-path aborts,
//! undo-log restores, global-lock rescues).

use part_htm::core::{TmConfig, TxCtx, Workload};
use part_htm::harness::{run_cell_with, Algo};
use part_htm::htm::abort::TxResult;
use part_htm::htm::{Addr, HtmConfig};
use rand::rngs::SmallRng;
use rand::Rng;

const COUNTERS: usize = 12;

/// Random multi-counter increments in 3 segments; the oracle is the conserved sum.
struct Chaos {
    base: Addr,
    picks: [usize; 6],
}

impl Workload for Chaos {
    type Snap = ();
    fn sample(&mut self, rng: &mut SmallRng) {
        for p in &mut self.picks {
            *p = rng.gen_range(0..COUNTERS);
        }
    }
    fn segments(&self) -> usize {
        3
    }
    fn segment<C: TxCtx>(&mut self, seg: usize, ctx: &mut C) -> TxResult<()> {
        for &p in &self.picks[seg * 2..seg * 2 + 2] {
            let a = self.base + (p * 8) as Addr;
            let v = ctx.read(a)?;
            ctx.work(3)?;
            ctx.write(a, v + 1)?;
        }
        Ok(())
    }
}

fn total_increments_exact(algo: Algo, htm: HtmConfig) {
    const THREADS: usize = 3;
    const OPS: usize = 150;
    let (r, total) = run_cell_with(
        algo,
        THREADS,
        OPS,
        htm,
        TmConfig::default(),
        COUNTERS * 8,
        |rt| rt.app(0),
        |base, _t| Chaos { base, picks: [0; 6] },
        |rt, _| (0..COUNTERS).map(|i| rt.verify_read(i * 8)).sum::<u64>(),
    );
    assert_eq!(r.commits, (THREADS * OPS) as u64, "{}", r.algo);
    assert_eq!(
        total,
        (THREADS * OPS * 6) as u64,
        "{}: increments lost or duplicated under failure injection",
        r.algo
    );
}

#[test]
fn every_protocol_survives_random_interrupts() {
    let htm = HtmConfig { interrupt_prob: 0.01, ..HtmConfig::default() };
    for algo in Algo::COMPETITORS {
        total_increments_exact(algo, htm.clone());
    }
}

#[test]
fn every_protocol_survives_interrupts_plus_tiny_caches() {
    let htm = HtmConfig {
        interrupt_prob: 0.005,
        l1_sets: 8,
        l1_ways: 2,
        read_lines_max: 24,
        ..HtmConfig::default()
    };
    for algo in Algo::COMPETITORS {
        total_increments_exact(algo, htm.clone());
    }
}

#[test]
fn extended_algos_survive_the_same_chaos() {
    let htm = HtmConfig { interrupt_prob: 0.01, ..HtmConfig::default() };
    for algo in [Algo::SpHt, Algo::Hle, Algo::PartHtmNoFast] {
        total_increments_exact(algo, htm.clone());
    }
}

#[test]
fn part_htm_survives_interrupts_with_l2_associativity() {
    let htm = HtmConfig {
        interrupt_prob: 0.01,
        l2_sets: 16,
        l2_ways: 2,
        ..HtmConfig::default()
    };
    for algo in [Algo::PartHtm, Algo::PartHtmO] {
        total_increments_exact(algo, htm.clone());
    }
}
