//! Property-based tests over the whole stack: randomly generated transaction
//! programs executed concurrently under Part-HTM (and competitors) must match a
//! sequential oracle on commutative effects and conserve non-commutative ones.

use part_htm::core::{TmConfig, TxCtx, Workload};
use part_htm::harness::{run_cell_with, Algo};
use part_htm::htm::abort::TxResult;
use part_htm::htm::{Addr, HtmConfig};
use proptest::prelude::*;
use rand::rngs::SmallRng;

/// A randomly generated multi-step transaction program: a sequence of
/// add-to-counter steps, split over a random number of segments. All adds commute,
/// so the final counter values are exactly the per-counter sums of committed
/// transactions regardless of schedule.
#[derive(Clone, Debug)]
struct Program {
    /// (counter index, delta) steps.
    steps: Vec<(usize, u64)>,
    segments: usize,
}

#[derive(Clone, Copy)]
struct Region {
    base: Addr,
}

struct AddWorkload {
    region: Region,
    program: Program,
}

impl Workload for AddWorkload {
    type Snap = ();
    fn sample(&mut self, _rng: &mut SmallRng) {}
    fn segments(&self) -> usize {
        self.program.segments
    }
    fn segment<C: TxCtx>(&mut self, seg: usize, ctx: &mut C) -> TxResult<()> {
        let len = self.program.steps.len();
        let per = len.div_ceil(self.program.segments);
        let start = (seg * per).min(len);
        let end = (start + per).min(len);
        for &(ctr, delta) in &self.program.steps[start..end] {
            let a = self.region.base + (ctr * 8) as Addr;
            let v = ctx.read(a)?;
            ctx.write(a, v + delta)?;
        }
        Ok(())
    }
}

fn arb_program() -> impl Strategy<Value = Program> {
    (
        proptest::collection::vec((0usize..8, 1u64..100), 1..24),
        1usize..5,
    )
        .prop_map(|(steps, segments)| Program {
            segments: segments.min(steps.len()),
            steps,
        })
}

/// Execute `program` concurrently and assert every counter equals the sequential
/// oracle (per-counter sums are schedule-independent because adds commute).
fn check_counter_sums(algo: Algo, program: &Program, htm: HtmConfig) {
    const THREADS: usize = 3;
    const REPS: usize = 20;
    let prog = program.clone();
    let (r, finals) = run_cell_with(
        algo,
        THREADS,
        REPS,
        htm,
        TmConfig::default(),
        64,
        |rt| Region { base: rt.app(0) },
        move |region, _t| AddWorkload {
            region,
            program: prog.clone(),
        },
        |rt, _| (0..8).map(|c| rt.verify_read(c * 8)).collect::<Vec<u64>>(),
    );
    assert_eq!(r.commits, (THREADS * REPS) as u64);
    for (c, &measured) in finals.iter().enumerate() {
        let expected: u64 = program
            .steps
            .iter()
            .filter(|&&(ctr, _)| ctr == c)
            .map(|&(_, d)| d)
            .sum::<u64>()
            * (THREADS * REPS) as u64;
        assert_eq!(measured, expected, "{}: counter {c} diverged", r.algo);
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    /// Random programs under Part-HTM on default geometry.
    #[test]
    fn random_programs_part_htm(program in arb_program()) {
        check_counter_sums(Algo::PartHtm, &program, HtmConfig::default());
    }

    /// Random programs under Part-HTM-O with a capacity-starved HTM, forcing the
    /// partitioned machinery (undo log, embedded locks) to carry the load.
    #[test]
    fn random_programs_part_htm_o_tiny_capacity(program in arb_program()) {
        let htm = HtmConfig { l1_sets: 16, l1_ways: 2, ..HtmConfig::default() };
        check_counter_sums(Algo::PartHtmO, &program, htm);
    }

    /// Random programs under HTM-GL and NOrec as cross-protocol oracles.
    #[test]
    fn random_programs_baselines(program in arb_program()) {
        check_counter_sums(Algo::HtmGl, &program, HtmConfig::default());
        check_counter_sums(Algo::NOrec, &program, HtmConfig::default());
    }

    /// Random programs under a tiny quantum (every transaction is time-limited).
    #[test]
    fn random_programs_tiny_quantum(program in arb_program()) {
        let htm = HtmConfig { quantum: 200, ..HtmConfig::default() };
        check_counter_sums(Algo::PartHtm, &program, htm);
    }
}
