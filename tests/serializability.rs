//! Cross-crate serializability tests: conserved-quantity invariants under every
//! executor, thread count, and HTM geometry.

use part_htm::core::{TmConfig, TxCtx, Workload};
use part_htm::harness::{run_cell_with, Algo};
use part_htm::htm::abort::TxResult;
use part_htm::htm::{Addr, HtmConfig};
use rand::rngs::SmallRng;
use rand::Rng;

const ACCOUNTS: usize = 16;
const INITIAL: u64 = 500;

#[derive(Clone, Copy)]
struct Bank {
    base: Addr,
}

/// Transfer between two accounts, in two segments (so the partitioned path splits
/// it and the global-abort/undo machinery is exercised).
struct Transfer {
    bank: Bank,
    from: usize,
    to: usize,
    amount: u64,
    moved: u64,
}

impl Workload for Transfer {
    type Snap = u64;

    fn sample(&mut self, rng: &mut SmallRng) {
        self.from = rng.gen_range(0..ACCOUNTS);
        self.to = (self.from + rng.gen_range(1..ACCOUNTS)) % ACCOUNTS;
        self.amount = rng.gen_range(1..40);
    }

    fn segments(&self) -> usize {
        2
    }

    fn snapshot(&self) -> u64 {
        self.moved
    }

    fn restore(&mut self, s: u64) {
        self.moved = s;
    }

    fn segment<C: TxCtx>(&mut self, seg: usize, ctx: &mut C) -> TxResult<()> {
        if seg == 0 {
            let a = self.bank.base + (self.from * 8) as Addr;
            let v = ctx.read(a)?;
            self.moved = self.amount.min(v);
            ctx.write(a, v - self.moved)?;
        } else {
            let a = self.bank.base + (self.to * 8) as Addr;
            let v = ctx.read(a)?;
            ctx.write(a, v + self.moved)?;
        }
        Ok(())
    }
}

fn conserved_total_under(algo: Algo, threads: usize, htm: HtmConfig, tm: TmConfig) {
    let (r, total) = run_cell_with(
        algo,
        threads,
        300,
        htm,
        tm,
        ACCOUNTS * 8,
        |rt| {
            for i in 0..ACCOUNTS {
                rt.setup_write(i * 8, INITIAL);
            }
            Bank { base: rt.app(0) }
        },
        |bank, _t| Transfer {
            bank,
            from: 0,
            to: 1,
            amount: 0,
            moved: 0,
        },
        |rt, _bank| (0..ACCOUNTS).map(|i| rt.verify_read(i * 8)).sum::<u64>(),
    );
    assert_eq!(
        total,
        (ACCOUNTS as u64) * INITIAL,
        "{} at {threads} threads lost or created money",
        r.algo
    );
    assert_eq!(r.commits, (threads * 300) as u64);
}

#[test]
fn every_algo_conserves_money_default_geometry() {
    for algo in Algo::COMPETITORS {
        for threads in [1, 2, 4] {
            conserved_total_under(algo, threads, HtmConfig::default(), TmConfig::default());
        }
    }
}

#[test]
fn part_htm_conserves_money_under_tiny_capacity() {
    // 16 sets x 2 ways: even two-account transfers plus metadata stress capacity,
    // forcing heavy partitioned-path and slow-path traffic.
    let htm = HtmConfig {
        l1_sets: 16,
        l1_ways: 2,
        ..HtmConfig::default()
    };
    for algo in [Algo::PartHtm, Algo::PartHtmO, Algo::HtmGl, Algo::NOrecRh] {
        conserved_total_under(algo, 4, htm.clone(), TmConfig::default());
    }
}

#[test]
fn part_htm_conserves_money_under_tiny_quantum() {
    let htm = HtmConfig {
        quantum: 300,
        ..HtmConfig::default()
    };
    for algo in [Algo::PartHtm, Algo::PartHtmO] {
        conserved_total_under(algo, 4, htm.clone(), TmConfig::default());
    }
}

#[test]
fn part_htm_conserves_money_without_fast_path() {
    conserved_total_under(
        Algo::PartHtmNoFast,
        4,
        HtmConfig::default(),
        TmConfig::default(),
    );
}

#[test]
fn part_htm_conserves_money_with_minimal_validation() {
    // Ablation knob: in-flight validation only before commit.
    let tm = TmConfig {
        validate_every_sub: false,
        skip_fast: true,
        ..TmConfig::default()
    };
    for algo in [Algo::PartHtm, Algo::PartHtmO] {
        conserved_total_under(algo, 4, HtmConfig::default(), tm.clone());
    }
}

#[test]
fn part_htm_conserves_money_with_tiny_ring() {
    // A 16-entry ring forces frequent rollover aborts; correctness must survive.
    let tm = TmConfig {
        ring_entries: 16,
        skip_fast: true,
        ..TmConfig::default()
    };
    for algo in [Algo::PartHtm, Algo::PartHtmO, Algo::RingStm] {
        conserved_total_under(algo, 4, HtmConfig::default(), tm.clone());
    }
}

#[test]
fn part_htm_conserves_money_with_small_signatures() {
    // 512-bit signatures collide often: more false conflicts, same correctness.
    let tm = TmConfig {
        sig_spec: part_htm::sig::SigSpec::new(512),
        skip_fast: true,
        ..TmConfig::default()
    };
    for algo in [Algo::PartHtm, Algo::RingStm] {
        conserved_total_under(algo, 4, HtmConfig::default(), tm.clone());
    }
}
