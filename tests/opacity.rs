//! Cross-crate opacity tests (§5.5, §6.2 of the paper).
//!
//! An invariant pair `x + y == TOTAL` is mutated by partitioned-path writers whose
//! two updates commit in separate sub-HTM transactions (eager writing makes the
//! intermediate state globally visible, protected only by write locks). Readers
//! read the pair across a segment boundary:
//!
//! * **Serializability** (both protocols): no *committed* reader ever returns a
//!   torn pair.
//! * **Opacity** (Part-HTM-O only): no *live* reader ever observes a torn pair at
//!   all. Base Part-HTM is explicitly allowed to observe one and abort later.

use part_htm::core::{PartHtm, PartHtmO, TmConfig, TmExecutor, TmRuntime, TxCtx, Workload};
use part_htm::htm::abort::TxResult;
use part_htm::htm::Addr;
use rand::rngs::SmallRng;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

const TOTAL: u64 = 10_000;

struct Mover {
    base: Addr,
    step: u64,
}

impl Workload for Mover {
    type Snap = ();
    fn sample(&mut self, _r: &mut SmallRng) {
        self.step = (self.step % 13) + 1;
    }
    fn segments(&self) -> usize {
        2
    }
    fn segment<C: TxCtx>(&mut self, seg: usize, ctx: &mut C) -> TxResult<()> {
        if seg == 0 {
            let x = ctx.read(self.base)?;
            let d = self.step.min(x);
            ctx.write(self.base, x - d)?;
            self.step = d;
        } else {
            let y = ctx.read(self.base + 8)?;
            ctx.write(self.base + 8, y + self.step)?;
        }
        Ok(())
    }
}

struct Checker<'a> {
    base: Addr,
    sum: u64,
    live_torn: &'a AtomicU64,
    committed_torn: &'a AtomicU64,
}

impl Workload for Checker<'_> {
    type Snap = u64;
    fn sample(&mut self, _r: &mut SmallRng) {}
    fn segments(&self) -> usize {
        2
    }
    fn snapshot(&self) -> u64 {
        self.sum
    }
    fn restore(&mut self, s: u64) {
        self.sum = s;
    }
    fn segment<C: TxCtx>(&mut self, seg: usize, ctx: &mut C) -> TxResult<()> {
        if seg == 0 {
            self.sum = ctx.read(self.base)?;
        } else {
            self.sum += ctx.read(self.base + 8)?;
            if self.sum != TOTAL {
                self.live_torn.fetch_add(1, Ordering::Relaxed);
            }
        }
        Ok(())
    }
    fn after_commit(&mut self) {
        if self.sum != TOTAL {
            self.committed_torn.fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// Run movers + checkers under one executor type; return (live torn, committed
/// torn) observation counts.
fn run_pair(opaque: bool, checks: usize) -> (u64, u64) {
    let live = AtomicU64::new(0);
    let committed = AtomicU64::new(0);
    let rt = TmRuntime::new(
        part_htm::htm::HtmConfig::default(),
        TmConfig {
            skip_fast: true,
            ..TmConfig::default()
        },
        2,
        64,
    );
    rt.setup_write(0, TOTAL);
    let stop = AtomicBool::new(false);
    std::thread::scope(|s| {
        let (rt, stop, live, committed) = (&rt, &stop, &live, &committed);
        s.spawn(move || {
            let mut w = Mover {
                base: rt.app(0),
                step: 3,
            };
            if opaque {
                let mut e = PartHtmO::new(rt, 0);
                while !stop.load(Ordering::Relaxed) {
                    w.sample(&mut e.thread_mut().rng);
                    e.execute(&mut w);
                }
            } else {
                let mut e = PartHtm::new(rt, 0);
                while !stop.load(Ordering::Relaxed) {
                    w.sample(&mut e.thread_mut().rng);
                    e.execute(&mut w);
                }
            }
        });
        s.spawn(move || {
            let mut w = Checker {
                base: rt.app(0),
                sum: 0,
                live_torn: live,
                committed_torn: committed,
            };
            if opaque {
                let mut e = PartHtmO::new(rt, 1);
                for _ in 0..checks {
                    w.sample(&mut e.thread_mut().rng);
                    e.execute(&mut w);
                }
            } else {
                let mut e = PartHtm::new(rt, 1);
                for _ in 0..checks {
                    w.sample(&mut e.thread_mut().rng);
                    e.execute(&mut w);
                }
            }
            stop.store(true, Ordering::Relaxed);
        });
    });
    // Final state must also be consistent.
    assert_eq!(rt.verify_read(0) + rt.verify_read(8), TOTAL);
    (
        live.load(Ordering::Relaxed),
        committed.load(Ordering::Relaxed),
    )
}

#[test]
fn part_htm_serializable_but_not_opaque() {
    let (_live, committed) = run_pair(false, 20_000);
    // Serializability: torn pairs never commit. (Live torn observations are
    // permitted for the base protocol and do occur under this schedule, but their
    // count is timing-dependent, so the test does not assert on it.)
    assert_eq!(committed, 0, "base Part-HTM committed a torn observation");
}

#[test]
fn part_htm_o_is_opaque() {
    let (live, committed) = run_pair(true, 20_000);
    assert_eq!(committed, 0, "Part-HTM-O committed a torn observation");
    assert_eq!(
        live, 0,
        "Part-HTM-O let a live transaction observe a torn pair"
    );
}
